package interp

import (
	"fmt"
	"time"
)

//go:generate go run gen_ops.go

// The register-IR engine ("regvm", Options.Engine == EngineRegVM). Where the
// closure engine threads Go closures, the regvm lowers each function to a
// dense []uint64 instruction stream over a frame-slot register file and runs
// it through a flat generated switch (op_exec.go, produced by gen_ops.go).
// Dispatch is one load + one switch per instruction, variables are direct
// slot operands (a plain scalar read costs no instruction at all), and the
// hottest statement shapes are fused into superinstructions selected from
// the committed opcode-pair profile (testdata/opcode_pairs.json).
//
// The observational contract is the same as the closure engine's: identical
// results, step counts, error text and event stream to the tree walker,
// including aborted prefixes; scalar address values are again the one
// permitted difference. Each function is compiled twice — an untraced and a
// traced stream — so a functional run never tests a tracing flag and a
// traced run pays for event emission only where the tree engine would emit.

// rerr is one compile-time error/event site. Fully static errors are
// precomputed into err; the rest carry the operands their lazy formatting
// needs. Array ops also reuse their site's line for trace events.
type rerr struct {
	err     error  // precomputed (undefined var, break outside loop, unknown node)
	arr     string // out-of-range: array name
	dim     int    // out-of-range: dimension index
	size    int    // out-of-range: dimension size
	line    int32
	loop    string // non-positive step / in-loop step limit: loop ID
	nameIdx uint32 // the loop's name index (fused traced loop headers)
}

// arrMeta is one array's lowered layout: off is the arrayMem index of
// element 0 (= base address - 1), abase the Addr of element 0 for events.
type arrMeta struct {
	off     int
	d0, d1  int
	dims    []int
	abase   uint64
	nameIdx uint32
	name    string
}

// rfunc is one lowered function. code is the untraced stream, tcode the
// traced stream (same semantics plus event emission); nslots covers both.
type rfunc struct {
	name    string
	nameIdx uint32
	nparams int
	nslots  int
	code    []uint64
	tcode   []uint64
}

// rprog is a whole lowered program plus the shared tables instructions
// index into.
type rprog struct {
	funcs  []rfunc
	entry  int
	consts []float64
	names  []string
	errs   []rerr
	arrays []arrMeta
}

// rvm executes an rprog. It mirrors the closure vm's run-time state: the
// machine's array memory (shared slice), a flat register stack grown per
// call and never reused, the same step/depth accounting and the same
// pooled event buffer.
type rvm struct {
	p        *rprog
	arrayMem []float64

	regs  []float64
	flags []uint8 // nonzero = slot holds a defined variable

	steps       int64
	maxSteps    int64
	depth       int
	maxDepth    int
	hasDeadline bool
	deadline    time.Time

	tracing bool
	tracer  Tracer
	batch   BatchTracer
	buf     []Event
	bufn    int

	// lstack tracks the loop IDs the traced stream has entered but not yet
	// exited, so an aborting run can emit the LoopExit events the tree
	// engine's defers would, innermost first.
	lstack []uint32

	// pairs, when non-nil, selects the execPairs dispatcher and accumulates
	// dynamic opcode-pair counts keyed prev<<8|next (the superinstruction
	// selection profile).
	pairs map[uint16]int64
}

func newRVM(p *rprog, m *Machine) *rvm {
	v := &rvm{
		p:        p,
		arrayMem: m.arrayMem,
		maxSteps: m.opts.MaxSteps,
		maxDepth: m.opts.MaxDepth,
		tracer:   m.tracer,
	}
	if !m.opts.Deadline.IsZero() {
		v.hasDeadline = true
		v.deadline = m.opts.Deadline
	}
	if m.tracer != nil {
		v.tracing = true
		v.buf = eventBufPool.Get().([]Event)
		if bt, ok := m.tracer.(BatchTracer); ok {
			v.batch = bt
		}
	}
	return v
}

// run executes the entry function. As in the closure vm, the event buffer is
// flushed on every return path so an aborted run delivers exactly the events
// that preceded the abort.
func (v *rvm) run() (float64, error) {
	ret, err := v.call(v.p.entry, 0, 0)
	v.flush()
	if v.buf != nil {
		eventBufPool.Put(v.buf)
		v.buf = nil
		v.tracing = false
	}
	return ret, err
}

// call invokes function fi with its arguments staged at regs[argBase:]. The
// callee frame is appended above every live frame (slots are never reused,
// the tree engine's address discipline), parameters are copied in untraced,
// and on an error the loops the callee still had open are exited and the
// CallExit event emitted — the unwind order of the tree engine's defers.
func (v *rvm) call(fi, argBase int, callLine int32) (float64, error) {
	f := &v.p.funcs[fi]
	if v.depth >= v.maxDepth {
		return 0, fmt.Errorf("interp: call depth limit %d exceeded at %s (line %d)", v.maxDepth, f.name, callLine)
	}
	v.depth++
	if v.tracing {
		v.emitLoop(EvCallEnter, f.nameIdx, callLine)
	}
	base := len(v.regs)
	need := base + f.nslots
	if cap(v.regs) < need {
		v.regs = growZeroed(v.regs, need)
		v.flags = growZeroedBytes(v.flags, need)
	} else {
		v.regs = v.regs[:need]
		v.flags = v.flags[:need]
	}
	for i := 0; i < f.nparams; i++ {
		v.regs[base+i] = v.regs[argBase+i]
		v.flags[base+i] = 1
	}
	lmark := len(v.lstack)
	code := f.code
	if v.tracing {
		code = f.tcode
	}
	var ret float64
	var err error
	if v.pairs != nil {
		ret, err = v.execPairs(code, base)
	} else {
		ret, err = v.exec(code, base)
	}
	if err != nil {
		if v.tracing {
			for len(v.lstack) > lmark {
				v.emitLoop(EvLoopExit, v.lstack[len(v.lstack)-1], 0)
				v.lstack = v.lstack[:len(v.lstack)-1]
			}
			v.emitLoop(EvCallExit, f.nameIdx, 0)
		}
		v.depth--
		return 0, err
	}
	if v.tracing {
		v.emitLoop(EvCallExit, f.nameIdx, 0)
	}
	v.depth--
	return ret, nil
}

// gateSlow is the cold half of the per-statement gate: the generated $GATE
// sequence calls it when the step limit is crossed or a deadline poll is
// due. steps is the dispatcher's local count (not yet synced to v.steps).
func (v *rvm) gateSlow(steps int64, line int32) error {
	if steps > v.maxSteps {
		return fmt.Errorf("%w: limit %d at line %d", ErrMaxSteps, v.maxSteps, line)
	}
	if time.Now().After(v.deadline) {
		return fmt.Errorf("%w after %d steps at line %d", ErrDeadline, steps, line)
	}
	return nil
}

func (v *rvm) errLoopLimit(idx uint32) error {
	return fmt.Errorf("%w: limit %d in loop %s", ErrMaxSteps, v.maxSteps, v.p.errs[idx].loop)
}

func (v *rvm) errOOB(idx uint32, i int) error {
	e := &v.p.errs[idx]
	return fmt.Errorf("interp: %s index %d out of range [0,%d) in dim %d (line %d)",
		e.arr, i, e.size, e.dim, e.line)
}

func (v *rvm) errPosStep(idx uint32, step float64) error {
	e := &v.p.errs[idx]
	return fmt.Errorf("interp: loop %s has non-positive step %g (line %d)", e.loop, step, e.line)
}

func (v *rvm) errStatic(idx uint32) error { return v.p.errs[idx].err }

func (v *rvm) errDivZero(line int32) error {
	return fmt.Errorf("interp: division by zero (line %d)", line)
}

func (v *rvm) errModZero(line int32) error {
	return fmt.Errorf("interp: modulus by zero (line %d)", line)
}

// Event emission mirrors the closure vm: indexed stores into the pooled
// buffer, flushed to the batch tracer (or replayed) when full.

func (v *rvm) slot() *Event {
	if v.bufn == eventBufSize {
		v.flush()
	}
	e := &v.buf[v.bufn&(eventBufSize-1)]
	v.bufn++
	return e
}

func (v *rvm) flush() {
	if v.bufn == 0 {
		return
	}
	if v.batch != nil {
		v.batch.TraceBatch(v.p.names, v.buf[:v.bufn])
	} else {
		ReplayBatch(v.tracer, v.p.names, v.buf[:v.bufn])
	}
	v.bufn = 0
}

func (v *rvm) emitCount(n int64, line int32) {
	e := v.slot()
	*e = Event{Kind: EvCount, A: uint64(n), Line: line}
}

func (v *rvm) emitAccess(kind EventKind, addr uint64, name uint32, array bool, line int32) {
	e := v.slot()
	*e = Event{Kind: kind, A: addr, Name: name, Array: array, Line: line}
}

// emitLoop covers every name+line event kind (loop enter/exit, call
// enter/exit).
func (v *rvm) emitLoop(kind EventKind, name uint32, line int32) {
	e := v.slot()
	*e = Event{Kind: kind, Name: name, Line: line}
}

func (v *rvm) emitIter(name uint32, iter int64) {
	e := v.slot()
	*e = Event{Kind: EvLoopIter, Name: name, A: uint64(iter)}
}
