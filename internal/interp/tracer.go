// Package interp executes mini-IR programs and emits the instrumentation
// event stream the paper's LLVM pass would produce: loads and stores with
// memory addresses, source lines and symbol names; loop entry/iteration/exit
// events; call enter/exit events; and dynamic instruction counts.
//
// The interpreter is deliberately simple (a tree walker) — its job is
// fidelity of the event stream, not speed. Benchmark inputs in this
// repository are sized so profiled runs stay in the millions of events.
package interp

// Addr is an abstract memory address. Array elements and scalar variable
// slots live in one flat address space; addresses are unique per allocation
// (scalar frame slots are never reused across activations, so recursive
// activations of a function see distinct addresses, as they would on a real
// stack with distinct frames).
type Addr uint64

// Ref carries the static symbol information an LLVM pass would attach to a
// memory instruction: whether the access is to an array and the symbol name.
type Ref struct {
	// Array reports whether the access targets a global array element.
	Array bool
	// Name is the array name or scalar variable name.
	Name string
}

// Tracer receives the instrumentation event stream of one execution. All
// methods are invoked synchronously in program order. Implementations that
// need loop-iteration or call-stack context should embed ContextTracker.
type Tracer interface {
	// Load is invoked after a memory read of addr by the statement at line.
	Load(addr Addr, ref Ref, line int)
	// Store is invoked after a memory write of addr by the statement at line.
	Store(addr Addr, ref Ref, line int)
	// LoopEnter is invoked when control enters the loop with the given ID.
	LoopEnter(loopID string, line int)
	// LoopIter is invoked at the start of each iteration, with the
	// zero-based iteration number.
	LoopIter(loopID string, iter int64)
	// LoopExit is invoked when control leaves the loop.
	LoopExit(loopID string)
	// CallEnter is invoked before executing the body of fn; line is the
	// call site (0 for the entry function).
	CallEnter(fn string, line int)
	// CallExit is invoked after fn returns.
	CallExit(fn string)
	// Count reports n dynamically executed IR operations attributable to
	// the statement at the given source line (innermost active region).
	Count(n int64, line int)
}

// Tee fans one event stream out to several tracers, in order.
func Tee(ts ...Tracer) Tracer { return teeTracer(ts) }

type teeTracer []Tracer

func (t teeTracer) Load(addr Addr, ref Ref, line int) {
	for _, x := range t {
		x.Load(addr, ref, line)
	}
}
func (t teeTracer) Store(addr Addr, ref Ref, line int) {
	for _, x := range t {
		x.Store(addr, ref, line)
	}
}
func (t teeTracer) LoopEnter(loopID string, line int) {
	for _, x := range t {
		x.LoopEnter(loopID, line)
	}
}
func (t teeTracer) LoopIter(loopID string, iter int64) {
	for _, x := range t {
		x.LoopIter(loopID, iter)
	}
}
func (t teeTracer) LoopExit(loopID string) {
	for _, x := range t {
		x.LoopExit(loopID)
	}
}
func (t teeTracer) CallEnter(fn string, line int) {
	for _, x := range t {
		x.CallEnter(fn, line)
	}
}
func (t teeTracer) CallExit(fn string) {
	for _, x := range t {
		x.CallExit(fn)
	}
}
func (t teeTracer) Count(n int64, line int) {
	for _, x := range t {
		x.Count(n, line)
	}
}

// NopTracer discards all events. Embed it to implement only part of Tracer.
type NopTracer struct{}

// Load implements Tracer.
func (NopTracer) Load(Addr, Ref, int) {}

// Store implements Tracer.
func (NopTracer) Store(Addr, Ref, int) {}

// LoopEnter implements Tracer.
func (NopTracer) LoopEnter(string, int) {}

// LoopIter implements Tracer.
func (NopTracer) LoopIter(string, int64) {}

// LoopExit implements Tracer.
func (NopTracer) LoopExit(string) {}

// CallEnter implements Tracer.
func (NopTracer) CallEnter(string, int) {}

// CallExit implements Tracer.
func (NopTracer) CallExit(string) {}

// Count implements Tracer.
func (NopTracer) Count(int64, int) {}

// LoopFrame is one live loop on the dynamic loop stack. Act is a
// program-unique activation number: two executions of the same loop (e.g. an
// inner loop re-entered on every outer iteration) get distinct activations,
// so iteration numbers are only ever compared within one activation.
type LoopFrame struct {
	ID   string
	Act  uint64
	Iter int64
}

// ContextTracker maintains the dynamic loop stack and call stack from the
// event stream. Tracers embed it (calling the embedded methods when they
// override one) to know, at each Load/Store, which loops are live and at
// which iteration — the exact context the paper's profiler records.
type ContextTracker struct {
	loops   []LoopFrame
	calls   []string
	nextAct uint64
}

// LoopEnter implements Tracer.
func (c *ContextTracker) LoopEnter(loopID string, line int) {
	c.nextAct++
	c.loops = append(c.loops, LoopFrame{ID: loopID, Act: c.nextAct, Iter: -1})
}

// LoopIter implements Tracer.
func (c *ContextTracker) LoopIter(loopID string, iter int64) {
	if n := len(c.loops); n > 0 {
		c.loops[n-1].Iter = iter
	}
}

// LoopExit implements Tracer.
func (c *ContextTracker) LoopExit(loopID string) {
	if n := len(c.loops); n > 0 {
		c.loops = c.loops[:n-1]
	}
}

// CallEnter implements Tracer.
func (c *ContextTracker) CallEnter(fn string, line int) {
	c.calls = append(c.calls, fn)
}

// CallExit implements Tracer.
func (c *ContextTracker) CallExit(fn string) {
	if n := len(c.calls); n > 0 {
		c.calls = c.calls[:n-1]
	}
}

// Load implements Tracer.
func (c *ContextTracker) Load(Addr, Ref, int) {}

// Store implements Tracer.
func (c *ContextTracker) Store(Addr, Ref, int) {}

// Count implements Tracer.
func (c *ContextTracker) Count(int64, int) {}

// LoopStack returns the live loops, outermost first. The returned slice is
// owned by the tracker and must not be retained across events.
func (c *ContextTracker) LoopStack() []LoopFrame { return c.loops }

// InnermostLoop returns the innermost live loop and true, or a zero frame and
// false when no loop is live.
func (c *ContextTracker) InnermostLoop() (LoopFrame, bool) {
	if n := len(c.loops); n > 0 {
		return c.loops[n-1], true
	}
	return LoopFrame{}, false
}

// CallStack returns the live function names, outermost first. The returned
// slice is owned by the tracker and must not be retained across events.
func (c *ContextTracker) CallStack() []string { return c.calls }

// CurrentFunc returns the innermost live function name, or "".
func (c *ContextTracker) CurrentFunc() string {
	if n := len(c.calls); n > 0 {
		return c.calls[n-1]
	}
	return ""
}
