package interp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pardetect/internal/ir"
)

// Options configures a Machine.
type Options struct {
	// Tracer receives the instrumentation event stream; nil disables
	// instrumentation (fast functional runs).
	Tracer Tracer
	// MaxSteps bounds the number of executed statements; 0 means the
	// default of 200 million. Exceeding the bound is an error (the mini-IR
	// has no termination checker).
	MaxSteps int64
	// Deadline, when non-zero, bounds the run in wall-clock time alongside
	// MaxSteps: execution past the deadline fails with an error wrapping
	// ErrDeadline. The clock is polled every deadlineCheckEvery statements,
	// so enforcement granularity is a few thousand statements.
	Deadline time.Time
	// MaxDepth bounds the call depth; 0 means the default of 10000.
	MaxDepth int
	// ArrayInit seeds the named global arrays before execution. Each slice
	// must match the declared size exactly. Arrays not listed start zeroed.
	ArrayInit map[string][]float64
	// Engine selects the execution engine: EngineTree (the default, also
	// selected by "") walks the AST and is the reference implementation;
	// EngineBytecode compiles the program to closure-threaded code at New
	// and batches tracer events; EngineRegVM lowers it further, to flat
	// register-based bytecode run by a generated dispatch switch with
	// superinstruction fusion (see regvm.go). All engines are
	// observationally identical — same results, states, step counts,
	// errors and event stream — except for the numeric values of scalar
	// addresses, which are only aliasing identities.
	Engine string
}

// Execution engine names for Options.Engine.
const (
	EngineTree     = "tree"
	EngineBytecode = "bytecode"
	EngineRegVM    = "regvm"
)

// ParseEngine validates an engine name arriving from the outside — a command
// line flag or a service request parameter — and returns its canonical form
// ("" selects the default tree engine). Front-ends share it so an unknown
// engine is rejected at the edge, as a usage error or a 400 response, instead
// of surfacing from deep inside the first profiled run.
func ParseEngine(name string) (string, error) {
	switch name {
	case "", EngineTree:
		return EngineTree, nil
	case EngineBytecode:
		return EngineBytecode, nil
	case EngineRegVM:
		return EngineRegVM, nil
	}
	return "", fmt.Errorf("interp: unknown engine %q (valid: %s, %s, %s)", name, EngineTree, EngineBytecode, EngineRegVM)
}

// ScalarBase is the lowest scalar-slot address. Array elements live in
// [1, ScalarBase); scalar variable slots are allocated densely from
// ScalarBase up. The split lets consumers (trace's paged shadow memory)
// index both regions directly instead of hashing addresses.
const ScalarBase = Addr(1) << 40

const (
	defaultMaxSteps = 200_000_000
	defaultMaxDepth = 10_000
	scalarBase      = ScalarBase
	// deadlineCheckEvery is the statement stride between wall-clock polls;
	// a power of two so the check compiles to a mask test on the hot path.
	deadlineCheckEvery = 1 << 14
)

// ErrDeadline reports that a run exceeded its wall-clock deadline
// (Options.Deadline). Use errors.Is to distinguish it from the step limit.
var ErrDeadline = errors.New("interp: wall-clock deadline exceeded")

// ErrMaxSteps reports that a run exceeded Options.MaxSteps. Unlike
// ErrDeadline, a MaxSteps abort is deterministic: two runs of the same
// program with the same limit stop at exactly the same statement, so
// truncated states are still comparable (see State.Comparable).
var ErrMaxSteps = errors.New("interp: step limit exceeded")

// Machine executes one mini-IR program. A Machine is single-use: create,
// Run, then inspect arrays and the return value.
type Machine struct {
	prog   *ir.Program
	opts   Options
	tracer Tracer

	arrayBase map[string]Addr
	arrayMem  []float64 // all global arrays, contiguous
	scalarMem []float64 // all scalar slots ever allocated, never reused

	steps     int64
	depth     int
	induction []Addr // addresses of live For induction variables

	// Bytecode engine state (Options.Engine == EngineBytecode): the lowered
	// program and its vm. The tree-walking fields above stay authoritative
	// for results — Run copies the vm's step count and return value back so
	// Steps, Return and Snapshot are engine-agnostic.
	code *compiled
	vm   *vm

	// Register-IR engine state (Options.Engine == EngineRegVM), under the
	// same contract as the closure vm.
	rvm *rvm

	ran bool
	ret float64
}

// New prepares a machine for prog. The program must have been built with
// ir.Builder (and therefore validated).
func New(prog *ir.Program, opts Options) (*Machine, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = defaultMaxDepth
	}
	m := &Machine{prog: prog, opts: opts, tracer: opts.Tracer}
	total := 0
	m.arrayBase = make(map[string]Addr, len(prog.Arrays))
	for _, a := range prog.Arrays {
		m.arrayBase[a.Name] = Addr(1 + total)
		total += a.Size()
	}
	m.arrayMem = make([]float64, total)
	for name, data := range opts.ArrayInit {
		a := prog.Array(name)
		if a == nil {
			return nil, fmt.Errorf("interp: ArrayInit for unknown array %q", name)
		}
		if len(data) != a.Size() {
			return nil, fmt.Errorf("interp: ArrayInit for %q has %d elements, array has %d", name, len(data), a.Size())
		}
		copy(m.arrayMem[m.arrayBase[name]-1:], data)
	}
	switch opts.Engine {
	case "", EngineTree:
	case EngineBytecode:
		m.code = compile(prog, m.arrayBase)
		m.vm = newVM(m.code, m)
	case EngineRegVM:
		rp, err := regCompile(prog, m.arrayBase, true)
		if err != nil {
			return nil, err
		}
		m.rvm = newRVM(rp, m)
	default:
		return nil, fmt.Errorf("interp: unknown engine %q", opts.Engine)
	}
	return m, nil
}

// Run executes the entry function and returns its return value.
func (m *Machine) Run() (float64, error) {
	if m.ran {
		return 0, fmt.Errorf("interp: machine already ran")
	}
	m.ran = true
	entry := m.prog.EntryFunc()
	if entry == nil {
		return 0, fmt.Errorf("interp: program %s has no entry function", m.prog.Name)
	}
	if m.vm != nil {
		v, err := m.vm.run(m.code.entry)
		m.steps = m.vm.steps
		if err != nil {
			return 0, err
		}
		m.ret = v
		return v, nil
	}
	if m.rvm != nil {
		v, err := m.rvm.run()
		m.steps = m.rvm.steps
		if err != nil {
			return 0, err
		}
		m.ret = v
		return v, nil
	}
	v, err := m.call(entry, nil, 0)
	if err != nil {
		return 0, err
	}
	m.ret = v
	return v, nil
}

// Return reports the entry function's return value of a completed run.
func (m *Machine) Return() float64 { return m.ret }

// Steps reports how many statements were executed.
func (m *Machine) Steps() int64 { return m.steps }

// Array returns a copy of the named global array's contents (row-major).
func (m *Machine) Array(name string) []float64 {
	base, ok := m.arrayBase[name]
	if !ok {
		return nil
	}
	size := m.prog.Array(name).Size()
	out := make([]float64, size)
	copy(out, m.arrayMem[base-1:int(base-1)+size])
	return out
}

// frame is one function activation.
type frame struct {
	fn   *ir.Function
	vars map[string]Addr
}

func (m *Machine) newScalar() Addr {
	m.scalarMem = append(m.scalarMem, 0)
	return scalarBase + Addr(len(m.scalarMem)-1)
}

func (m *Machine) readScalar(a Addr) float64     { return m.scalarMem[a-scalarBase] }
func (m *Machine) writeScalar(a Addr, v float64) { m.scalarMem[a-scalarBase] = v }

// control indicates how a statement list terminated.
type control int

const (
	ctlNext control = iota
	ctlBreak
	ctlReturn
)

func (m *Machine) call(fn *ir.Function, args []float64, callLine int) (float64, error) {
	if m.depth >= m.opts.MaxDepth {
		return 0, fmt.Errorf("interp: call depth limit %d exceeded at %s (line %d)", m.opts.MaxDepth, fn.Name, callLine)
	}
	m.depth++
	if m.tracer != nil {
		m.tracer.CallEnter(fn.Name, callLine)
	}
	fr := &frame{fn: fn, vars: make(map[string]Addr, len(fn.Params)+8)}
	for i, p := range fn.Params {
		a := m.newScalar()
		m.writeScalar(a, args[i])
		fr.vars[p] = a
		// Parameter binding is a store: callees reading a parameter that
		// the caller computed from memory see a dependence through the
		// caller's load, which the profiler already recorded. The binding
		// itself is register traffic in LLVM terms, so it is not traced.
	}
	ctl, v, err := m.execStmts(fr, fn.Body)
	if m.tracer != nil {
		m.tracer.CallExit(fn.Name)
	}
	m.depth--
	if err != nil {
		return 0, err
	}
	if ctl == ctlBreak {
		return 0, fmt.Errorf("interp: break outside loop in %s", fn.Name)
	}
	return v, nil
}

func (m *Machine) execStmts(fr *frame, stmts []ir.Stmt) (control, float64, error) {
	for _, s := range stmts {
		ctl, v, err := m.execStmt(fr, s)
		if err != nil || ctl != ctlNext {
			return ctl, v, err
		}
	}
	return ctlNext, 0, nil
}

func (m *Machine) execStmt(fr *frame, s ir.Stmt) (control, float64, error) {
	m.steps++
	if m.steps > m.opts.MaxSteps {
		return ctlNext, 0, fmt.Errorf("%w: limit %d at line %d", ErrMaxSteps, m.opts.MaxSteps, s.Pos())
	}
	if m.steps%deadlineCheckEvery == 0 && !m.opts.Deadline.IsZero() && time.Now().After(m.opts.Deadline) {
		return ctlNext, 0, fmt.Errorf("%w after %d steps at line %d", ErrDeadline, m.steps, s.Pos())
	}
	switch s := s.(type) {
	case *ir.Assign:
		v, n, err := m.eval(fr, s.Src, s.Pos())
		if err != nil {
			return ctlNext, 0, err
		}
		n++ // the store itself
		switch dst := s.Dst.(type) {
		case ir.Var:
			a, ok := fr.vars[dst.Name]
			if !ok {
				a = m.newScalar()
				fr.vars[dst.Name] = a
			}
			m.writeScalar(a, v)
			if m.tracer != nil {
				m.tracer.Count(n, s.Pos())
				if !m.isInduction(a) {
					m.tracer.Store(a, Ref{Name: dst.Name}, s.Pos())
				}
			}
		case *ir.Elem:
			a, en, err := m.elemAddr(fr, dst, s.Pos())
			if err != nil {
				return ctlNext, 0, err
			}
			m.arrayMem[a-1] = v
			if m.tracer != nil {
				m.tracer.Count(n+en, s.Pos())
				m.tracer.Store(a, Ref{Array: true, Name: dst.Arr}, s.Pos())
			}
		}
		return ctlNext, 0, nil

	case *ir.For:
		return m.execFor(fr, s)

	case *ir.While:
		return m.execWhile(fr, s)

	case *ir.If:
		c, n, err := m.eval(fr, s.Cond, s.Pos())
		if err != nil {
			return ctlNext, 0, err
		}
		if m.tracer != nil {
			m.tracer.Count(n+1, s.Pos())
		}
		if c != 0 {
			return m.execStmts(fr, s.Then)
		}
		return m.execStmts(fr, s.Else)

	case *ir.Return:
		var v float64
		if s.Val != nil {
			var n int64
			var err error
			v, n, err = m.eval(fr, s.Val, s.Pos())
			if err != nil {
				return ctlNext, 0, err
			}
			if m.tracer != nil {
				m.tracer.Count(n+1, s.Pos())
			}
		}
		return ctlReturn, v, nil

	case *ir.Break:
		return ctlBreak, 0, nil

	case *ir.ExprStmt:
		_, n, err := m.eval(fr, s.X, s.Pos())
		if err != nil {
			return ctlNext, 0, err
		}
		if m.tracer != nil {
			m.tracer.Count(n, s.Pos())
		}
		return ctlNext, 0, nil

	default:
		return ctlNext, 0, fmt.Errorf("interp: unknown statement %T at line %d", s, s.Pos())
	}
}

func (m *Machine) execFor(fr *frame, s *ir.For) (control, float64, error) {
	start, n1, err := m.eval(fr, s.Start, s.Pos())
	if err != nil {
		return ctlNext, 0, err
	}
	end, n2, err := m.eval(fr, s.End, s.Pos())
	if err != nil {
		return ctlNext, 0, err
	}
	step, n3, err := m.eval(fr, s.Step, s.Pos())
	if err != nil {
		return ctlNext, 0, err
	}
	if step <= 0 {
		return ctlNext, 0, fmt.Errorf("interp: loop %s has non-positive step %g (line %d)", s.LoopID, step, s.Pos())
	}
	if m.tracer != nil {
		m.tracer.Count(n1+n2+n3, s.Pos())
	}

	// The induction variable is a fresh slot per loop execution; its
	// updates are untraced, matching how DiscoPoP's profiler elides
	// induction variables recognised by scalar evolution.
	a, ok := fr.vars[s.Var]
	if !ok {
		a = m.newScalar()
		fr.vars[s.Var] = a
	}
	m.induction = append(m.induction, a)
	defer func() { m.induction = m.induction[:len(m.induction)-1] }()

	if m.tracer != nil {
		m.tracer.LoopEnter(s.LoopID, s.Pos())
		defer m.tracer.LoopExit(s.LoopID)
	}
	iter := int64(0)
	for v := start; v < end; v += step {
		m.steps++
		if m.steps > m.opts.MaxSteps {
			return ctlNext, 0, fmt.Errorf("%w: limit %d in loop %s", ErrMaxSteps, m.opts.MaxSteps, s.LoopID)
		}
		m.writeScalar(a, v)
		if m.tracer != nil {
			m.tracer.LoopIter(s.LoopID, iter)
			m.tracer.Count(2, s.Pos()) // compare + increment
		}
		ctl, rv, err := m.execStmts(fr, s.Body)
		if err != nil {
			return ctlNext, 0, err
		}
		switch ctl {
		case ctlBreak:
			return ctlNext, 0, nil
		case ctlReturn:
			return ctlReturn, rv, nil
		}
		iter++
	}
	return ctlNext, 0, nil
}

func (m *Machine) execWhile(fr *frame, s *ir.While) (control, float64, error) {
	if m.tracer != nil {
		m.tracer.LoopEnter(s.LoopID, s.Pos())
		defer m.tracer.LoopExit(s.LoopID)
	}
	for iter := int64(0); ; iter++ {
		m.steps++
		if m.steps > m.opts.MaxSteps {
			return ctlNext, 0, fmt.Errorf("%w: limit %d in loop %s", ErrMaxSteps, m.opts.MaxSteps, s.LoopID)
		}
		c, n, err := m.eval(fr, s.Cond, s.Pos())
		if err != nil {
			return ctlNext, 0, err
		}
		if m.tracer != nil {
			m.tracer.Count(n+1, s.Pos())
		}
		if c == 0 {
			return ctlNext, 0, nil
		}
		if m.tracer != nil {
			m.tracer.LoopIter(s.LoopID, iter)
		}
		ctl, rv, err := m.execStmts(fr, s.Body)
		if err != nil {
			return ctlNext, 0, err
		}
		switch ctl {
		case ctlBreak:
			return ctlNext, 0, nil
		case ctlReturn:
			return ctlReturn, rv, nil
		}
	}
}

func (m *Machine) isInduction(a Addr) bool {
	for _, x := range m.induction {
		if x == a {
			return true
		}
	}
	return false
}

// elemAddr computes the flat address of an array element, evaluating index
// expressions; it returns the address and the operation count of the index
// computation.
func (m *Machine) elemAddr(fr *frame, e *ir.Elem, line int) (Addr, int64, error) {
	decl := m.prog.Array(e.Arr)
	base := m.arrayBase[e.Arr]
	flat := 0
	var ops int64
	for d, ix := range e.Idx {
		v, n, err := m.eval(fr, ix, line)
		if err != nil {
			return 0, 0, err
		}
		ops += n + 1
		i := int(v)
		if i < 0 || i >= decl.Dims[d] {
			return 0, 0, fmt.Errorf("interp: %s index %d out of range [0,%d) in dim %d (line %d)",
				e.Arr, i, decl.Dims[d], d, line)
		}
		flat = flat*decl.Dims[d] + i
	}
	return base + Addr(flat), ops, nil
}

// eval evaluates x and returns its value and the number of IR operations
// executed (for instruction counting). line is the enclosing statement's
// source line, used to attribute memory events.
func (m *Machine) eval(fr *frame, x ir.Expr, line int) (float64, int64, error) {
	switch x := x.(type) {
	case ir.Const:
		return x.V, 0, nil

	case ir.Var:
		a, ok := fr.vars[x.Name]
		if !ok {
			return 0, 0, fmt.Errorf("interp: read of undefined variable %q in %s (line %d)", x.Name, fr.fn.Name, line)
		}
		v := m.readScalar(a)
		if m.tracer != nil && !m.isInduction(a) {
			m.tracer.Load(a, Ref{Name: x.Name}, line)
		}
		return v, 1, nil

	case *ir.Elem:
		a, n, err := m.elemAddr(fr, x, line)
		if err != nil {
			return 0, 0, err
		}
		v := m.arrayMem[a-1]
		if m.tracer != nil {
			m.tracer.Load(a, Ref{Array: true, Name: x.Arr}, line)
		}
		return v, n + 1, nil

	case *ir.Bin:
		l, n1, err := m.eval(fr, x.L, line)
		if err != nil {
			return 0, 0, err
		}
		// Short-circuit logical operators, like the C sources they model.
		switch x.Op {
		case ir.And:
			if l == 0 {
				return 0, n1 + 1, nil
			}
		case ir.Or:
			if l != 0 {
				return 1, n1 + 1, nil
			}
		}
		r, n2, err := m.eval(fr, x.R, line)
		if err != nil {
			return 0, 0, err
		}
		v, err := applyBin(x.Op, l, r, line)
		return v, n1 + n2 + 1, err

	case *ir.Un:
		v, n, err := m.eval(fr, x.X, line)
		if err != nil {
			return 0, 0, err
		}
		switch x.Op {
		case ir.Neg:
			return -v, n + 1, nil
		case ir.Not:
			if v == 0 {
				return 1, n + 1, nil
			}
			return 0, n + 1, nil
		case ir.Sqrt:
			return math.Sqrt(v), n + 1, nil
		case ir.Floor:
			return math.Floor(v), n + 1, nil
		case ir.Abs:
			return math.Abs(v), n + 1, nil
		default:
			return 0, 0, fmt.Errorf("interp: unknown unary op %v (line %d)", x.Op, line)
		}

	case *ir.Call:
		callee := m.prog.Func(x.Fn)
		if callee == nil {
			return 0, 0, fmt.Errorf("interp: call to unknown function %q (line %d)", x.Fn, line)
		}
		args := make([]float64, len(x.Args))
		var ops int64 = 1
		for i, ax := range x.Args {
			v, n, err := m.eval(fr, ax, line)
			if err != nil {
				return 0, 0, err
			}
			args[i] = v
			ops += n
		}
		if m.tracer != nil {
			m.tracer.Count(ops, line)
		}
		v, err := m.call(callee, args, line)
		return v, 0, err // callee ops were counted inside the call

	default:
		return 0, 0, fmt.Errorf("interp: unknown expression %T (line %d)", x, line)
	}
}

func applyBin(op ir.BinOp, l, r float64, line int) (float64, error) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ir.Add:
		return l + r, nil
	case ir.Sub:
		return l - r, nil
	case ir.Mul:
		return l * r, nil
	case ir.Div:
		if r == 0 {
			return 0, fmt.Errorf("interp: division by zero (line %d)", line)
		}
		return l / r, nil
	case ir.Mod:
		if r == 0 {
			return 0, fmt.Errorf("interp: modulus by zero (line %d)", line)
		}
		return fmod(l, r), nil
	case ir.Lt:
		return b2f(l < r), nil
	case ir.Le:
		return b2f(l <= r), nil
	case ir.Gt:
		return b2f(l > r), nil
	case ir.Ge:
		return b2f(l >= r), nil
	case ir.Eq:
		return b2f(l == r), nil
	case ir.Ne:
		return b2f(l != r), nil
	case ir.And:
		return b2f(l != 0 && r != 0), nil
	case ir.Or:
		return b2f(l != 0 || r != 0), nil
	case ir.Min:
		return math.Min(l, r), nil
	case ir.Max:
		return math.Max(l, r), nil
	default:
		return 0, fmt.Errorf("interp: unknown binary op %v (line %d)", op, line)
	}
}

// fmod is math.Mod with a fast path for the dominant case of integral
// operands: for integers exactly representable in a float64 the remainder
// following the dividend's sign is exactly what both math.Mod and Go's
// integer % compute, so the results are bit-identical and the float
// decomposition (frexp/ldexp) that makes math.Mod expensive is skipped.
func fmod(l, r float64) float64 {
	const exact = 1 << 53
	if l > -exact && l < exact && r > -exact && r < exact {
		li, ri := int64(l), int64(r)
		if float64(li) == l && float64(ri) == r {
			return float64(li % ri)
		}
	}
	return math.Mod(l, r)
}
