package interp

import (
	"fmt"
	"math"

	"pardetect/internal/ir"
)

// Lowering from the validated mini-IR to regvm bytecode (regvm.go; opcode
// semantics in gen_ops.go). Each function is lowered twice — an untraced and
// a traced stream over one shared frame layout — so the engine never tests a
// tracing flag at run time.
//
// The passes, in order, per function and stream:
//
//   - slot assignment: named variables get dense frame slots (params first),
//     expression temporaries a bump-allocated region above them that resets
//     per statement;
//   - lowering with two flow-sensitive analyses folded in: a must-defined
//     set that elides the defined-variable check (CheckDef) and the
//     defined-flag write (SetDef) where a variable is provably defined, and
//     a static induction scope that elides the trace events of For
//     induction variables exactly where the tree engine's dynamic check
//     would (the check is by address; within one function the loop
//     variable's slot is that address);
//   - operation counting: the per-statement Count events are computed
//     statically; statements containing short-circuit And/Or get a run-time
//     accumulator slot (AccAdd/EmitCountAcc) because their counts are
//     data-dependent;
//   - peephole fusion over the assembled instruction list (superinstruction
//     selection, see DESIGN.md §10): read-modify-write triples, index-wrap
//     mod+access pairs, compare+branch pairs, and the statement gate fused
//     into the following instruction. Constant-operand binaries (AddK...)
//     and multiply-accumulate shapes (MulAdd/MulSub) are selected directly
//     during lowering, where the AST shape is still visible.
//
// Parity with the tree engine is instruction-order parity of the observable
// acts: every event emission, error check and step gate is placed so the
// emitted event sequence and the abort points match the tree walker exactly.
// Memory-write timing relative to events is not observable and is allowed
// to differ.
//
// regCompile fails only on capacity overflows of the instruction encoding
// (65535 slots/constants/functions/arrays per program, 255 array operands in
// fused 2-D ops — the fuzzer and the app suite sit orders of magnitude
// below these; oversized operands in fusable positions just skip the fused
// form where a fallback exists).

// ains is one instruction in the pre-assembly list: operand fields, the aux
// word, and an optional jump-target label. Dead instructions (consumed by
// fusion) assemble to nothing; labels resolve to the next live instruction.
type ains struct {
	op         OpCode
	a, b, c, d int
	lo, hi     uint32
	tgt        int // label id, or -1
	dead       bool

	// Extended (four-word) ops only: the second operand pair. ext selects
	// the wide encoding in assemble.
	ext     bool
	x, y, z int
	w       int
	lo2     uint32
}

type regCompiler struct {
	prog      *ir.Program
	arrayBase map[string]Addr
	fuse      bool

	consts   []float64
	constIdx map[uint64]int
	names    []string
	nameIdx  map[string]uint32
	errs     []rerr
	arrays   []arrMeta
	arrIdx   map[string]int
	funcIdx  map[string]int
	funcs    []rfunc

	err error // first capacity overflow
}

func regCompile(prog *ir.Program, arrayBase map[string]Addr, fuse bool) (*rprog, error) {
	rc := &regCompiler{
		prog:      prog,
		arrayBase: arrayBase,
		fuse:      fuse,
		constIdx:  make(map[uint64]int),
		nameIdx:   make(map[string]uint32),
		arrIdx:    make(map[string]int, len(prog.Arrays)),
		funcIdx:   make(map[string]int, len(prog.Funcs)),
	}
	for i, a := range prog.Arrays {
		base := arrayBase[a.Name]
		m := arrMeta{
			off:     int(base) - 1,
			dims:    a.Dims,
			d0:      a.Dims[0],
			abase:   uint64(base),
			nameIdx: rc.intern(a.Name),
			name:    a.Name,
		}
		if len(a.Dims) > 1 {
			m.d1 = a.Dims[1]
		}
		rc.arrays = append(rc.arrays, m)
		rc.arrIdx[a.Name] = i
	}
	if len(rc.arrays) > 0xffff {
		return nil, fmt.Errorf("interp: regvm: program has %d arrays, limit 65535", len(rc.arrays))
	}
	for i, fn := range prog.Funcs {
		rc.funcIdx[fn.Name] = i
	}
	if len(prog.Funcs) > 0xffff {
		return nil, fmt.Errorf("interp: regvm: program has %d functions, limit 65535", len(prog.Funcs))
	}
	rc.funcs = make([]rfunc, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		named, nnamed := scanSlots(fn)
		f := rfunc{name: fn.Name, nameIdx: rc.intern(fn.Name), nparams: len(fn.Params)}
		var tmax int
		f.code = rc.lower(fn, named, nnamed, false, &tmax)
		f.tcode = rc.lower(fn, named, nnamed, true, &tmax)
		f.nslots = nnamed + tmax
		if f.nslots > 0xffff {
			return nil, fmt.Errorf("interp: regvm: function %s needs %d slots, limit 65535", fn.Name, f.nslots)
		}
		rc.funcs[i] = f
	}
	if len(rc.consts) > 0xffff {
		return nil, fmt.Errorf("interp: regvm: program has %d constants, limit 65535", len(rc.consts))
	}
	if rc.err != nil {
		return nil, rc.err
	}
	entry := rc.funcIdx[prog.Entry] // Run rejects a missing entry before the vm starts
	return &rprog{
		funcs:  rc.funcs,
		entry:  entry,
		consts: rc.consts,
		names:  rc.names,
		errs:   rc.errs,
		arrays: rc.arrays,
	}, nil
}

func (rc *regCompiler) intern(s string) uint32 {
	if i, ok := rc.nameIdx[s]; ok {
		return i
	}
	i := uint32(len(rc.names))
	rc.names = append(rc.names, s)
	rc.nameIdx[s] = i
	return i
}

func (rc *regCompiler) kidx(v float64) int {
	bits := math.Float64bits(v)
	if i, ok := rc.constIdx[bits]; ok {
		return i
	}
	i := len(rc.consts)
	rc.consts = append(rc.consts, v)
	rc.constIdx[bits] = i
	return i
}

func (rc *regCompiler) newErr(e rerr) uint32 {
	rc.errs = append(rc.errs, e)
	return uint32(len(rc.errs) - 1)
}

func (rc *regCompiler) errOOBSite(arr string, dim, size int, line int32) uint32 {
	return rc.newErr(rerr{arr: arr, dim: dim, size: size, line: line})
}

// scanSlots assigns dense frame slots to every variable a function mentions:
// parameters first, then first mention in a deterministic body walk. Both
// streams share the table (slot numbers are aliasing identities only).
func scanSlots(fn *ir.Function) (map[string]int, int) {
	slots := make(map[string]int, len(fn.Params)+8)
	of := func(name string) {
		if _, ok := slots[name]; !ok {
			slots[name] = len(slots)
		}
	}
	for _, p := range fn.Params {
		of(p)
	}
	var walkExpr func(x ir.Expr)
	walkExpr = func(x ir.Expr) {
		switch x := x.(type) {
		case ir.Var:
			of(x.Name)
		case *ir.Elem:
			for _, ix := range x.Idx {
				walkExpr(ix)
			}
		case *ir.Bin:
			walkExpr(x.L)
			walkExpr(x.R)
		case *ir.Un:
			walkExpr(x.X)
		case *ir.Call:
			for _, ax := range x.Args {
				walkExpr(ax)
			}
		}
	}
	var walkStmts func(stmts []ir.Stmt)
	walkStmts = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ir.Assign:
				walkExpr(s.Src)
				switch dst := s.Dst.(type) {
				case ir.Var:
					of(dst.Name)
				case *ir.Elem:
					for _, ix := range dst.Idx {
						walkExpr(ix)
					}
				}
			case *ir.For:
				walkExpr(s.Start)
				walkExpr(s.End)
				walkExpr(s.Step)
				of(s.Var)
				walkStmts(s.Body)
			case *ir.While:
				walkExpr(s.Cond)
				walkStmts(s.Body)
			case *ir.If:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *ir.Return:
				if s.Val != nil {
					walkExpr(s.Val)
				}
			case *ir.ExprStmt:
				walkExpr(s.X)
			}
		}
	}
	walkStmts(fn.Body)
	return slots, len(slots)
}

// cntScope tracks one operation-count scope (a statement, or a call's
// argument list which emits its own Count event). static accumulates the
// compile-time-known part; active scopes additionally carry an accumulator
// slot for the data-dependent part behind short-circuit branches.
type cntScope struct {
	static int64
	acc    int
	active bool
}

type loopCtx struct {
	exitLabel int    // Break jumps here (traced: lands on EmitLoopExit)
	nameIdx   uint32 // loop ID, for LoopExit unwinds at Return
}

// flow is the per-stream lowering state of one function.
type flow struct {
	rc     *regCompiler
	fn     *ir.Function
	traced bool

	slots   map[string]int
	nnamed  int
	tempTop int
	tempMax *int

	asm    []ains
	labels []int

	defined    map[string]bool
	induct     map[string]int
	loops      []loopCtx
	cnts       []cntScope
	terminated bool
}

func (rc *regCompiler) lower(fn *ir.Function, slots map[string]int, nnamed int, traced bool, tmax *int) []uint64 {
	f := &flow{
		rc:      rc,
		fn:      fn,
		traced:  traced,
		slots:   slots,
		nnamed:  nnamed,
		tempMax: tmax,
		defined: make(map[string]bool, nnamed),
		induct:  make(map[string]int),
	}
	for _, p := range fn.Params {
		f.defined[p] = true
	}
	f.lowerStmts(fn.Body)
	// Falling off the end returns 0, with no gate — the tree engine's
	// execStmts running out of statements. Also the landing point for any
	// label placed at the very end of the body.
	f.emit(OpRetZ, 0, 0, 0, 0, 0, 0)
	if rc.fuse {
		f.fusePeephole()
	}
	return f.assemble()
}

func (f *flow) emit(op OpCode, a, b, c, d int, lo, hi uint32) {
	if a > 0xffff || b > 0xffff || c > 0xffff || d > 0xff {
		if f.rc.err == nil {
			f.rc.err = fmt.Errorf("interp: regvm: operand overflow in %s (op %s)", f.fn.Name, op)
		}
	}
	f.asm = append(f.asm, ains{op: op, a: a, b: b, c: c, d: d, lo: lo, hi: hi, tgt: -1})
}

func (f *flow) emitJump(op OpCode, a, b int, label int) {
	f.asm = append(f.asm, ains{op: op, a: a, b: b, tgt: label})
}

func (f *flow) newLabel() int {
	f.labels = append(f.labels, -1)
	return len(f.labels) - 1
}

func (f *flow) place(label int) { f.labels[label] = len(f.asm) }

func (f *flow) temp() int {
	t := f.nnamed + f.tempTop
	f.tempTop++
	if f.tempTop > *f.tempMax {
		*f.tempMax = f.tempTop
	}
	return t
}

// ---------------------------------------------------------------------------
// Operation counting
// ---------------------------------------------------------------------------

// needsAcc reports whether an expression's operation count is data-dependent
// (short-circuit And/Or outside call arguments; a call's arguments count
// toward the call's own scope).
func needsAcc(x ir.Expr) bool {
	switch x := x.(type) {
	case *ir.Bin:
		if x.Op == ir.And || x.Op == ir.Or {
			return true
		}
		return needsAcc(x.L) || needsAcc(x.R)
	case *ir.Un:
		return needsAcc(x.X)
	case *ir.Elem:
		for _, ix := range x.Idx {
			if needsAcc(ix) {
				return true
			}
		}
	}
	return false
}

func (f *flow) beginCnt(acc bool) {
	if !f.traced {
		f.cnts = append(f.cnts, cntScope{})
		return
	}
	s := cntScope{active: acc}
	if acc {
		s.acc = f.temp()
		f.emit(OpConst, s.acc, f.rc.kidx(0), 0, 0, 0, 0)
	}
	f.cnts = append(f.cnts, s)
}

func (f *flow) addCnt(n int64) {
	if !f.traced {
		return
	}
	f.cnts[len(f.cnts)-1].static += n
}

// flushCnt moves the pending static count into the accumulator; it brackets
// the conditionally-executed halves of And/Or.
func (f *flow) flushCnt() {
	if !f.traced {
		return
	}
	s := &f.cnts[len(f.cnts)-1]
	if !s.active || s.static == 0 {
		return
	}
	f.emit(OpAccAdd, s.acc, 0, 0, 0, 0, uint32(s.static))
	s.static = 0
}

// endCnt pops the scope without emitting (untraced streams, and traced
// paths that fold the count into a fused store).
func (f *flow) endCnt() { f.cnts = f.cnts[:len(f.cnts)-1] }

// endCntEmit pops the scope and emits its Count event with extra added
// (the +1 of stores, conditions and returns).
func (f *flow) endCntEmit(extra int64, line int32) {
	s := f.cnts[len(f.cnts)-1]
	f.cnts = f.cnts[:len(f.cnts)-1]
	if !f.traced {
		return
	}
	if s.active {
		f.emit(OpEmitCountAcc, s.acc, 0, 0, 0, uint32(line), uint32(s.static+extra))
	} else {
		f.emit(OpEmitCount, 0, 0, 0, 0, uint32(line), uint32(s.static+extra))
	}
}

// cntIsStatic reports whether the current scope's count is compile-time
// known (the precondition of the fused traced stores, which carry the count
// as an immediate).
func (f *flow) cntIsStatic() bool { return !f.cnts[len(f.cnts)-1].active }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// exprSafe reports whether lowering x produces no instruction that can fail
// or (in a traced stream) emit an event. Safe expressions may be hoisted
// past a bounds check, which is what the fused 2-D array ops do to the
// second index.
func (f *flow) exprSafe(x ir.Expr) bool {
	switch x := x.(type) {
	case ir.Const:
		return true
	case ir.Var:
		if !f.defined[x.Name] {
			return false
		}
		return !f.traced || f.induct[x.Name] > 0
	case *ir.Un:
		switch x.Op {
		case ir.Neg, ir.Not, ir.Sqrt, ir.Floor, ir.Abs:
			return f.exprSafe(x.X)
		}
		return false
	case *ir.Bin:
		switch x.Op {
		case ir.Add, ir.Sub, ir.Mul, ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Eq, ir.Ne, ir.Min, ir.Max:
			return f.exprSafe(x.L) && f.exprSafe(x.R)
		}
		return false
	}
	return false
}

// lowerExpr lowers x and returns the register holding its value: a fresh
// temporary, or the variable's own slot (a read of a defined variable costs
// no instruction at all). Operation counts accrue to the current scope.
func (f *flow) lowerExpr(x ir.Expr, line int32) int {
	return f.lowerExprTo(x, line, -1)
}

// dstOr resolves a result register: the caller-requested destination, or a
// fresh temporary.
func (f *flow) dstOr(dst int) int {
	if dst >= 0 {
		return dst
	}
	return f.temp()
}

// lowerExprTo lowers x into dst when dst >= 0 (lowerExpr otherwise). Every
// lowering writes dst only in its final instruction — after all operand
// reads on every path — so the destination may be a register x itself
// reads (t = t + a[i] targets t's own slot directly).
func (f *flow) lowerExprTo(x ir.Expr, line int32, dst int) int {
	switch x := x.(type) {
	case ir.Const:
		t := f.dstOr(dst)
		f.emit(OpConst, t, f.rc.kidx(x.V), 0, 0, 0, 0)
		return t

	case ir.Var:
		r := f.lowerVarRead(x.Name, line)
		if dst >= 0 && r != dst {
			f.emit(OpMov, dst, r, 0, 0, 0, 0)
			return dst
		}
		return r

	case *ir.Elem:
		return f.lowerElemLoad(x, line, dst)

	case *ir.Bin:
		return f.lowerBin(x, line, dst)

	case *ir.Un:
		rx := f.lowerExpr(x.X, line)
		t := f.dstOr(dst)
		switch x.Op {
		case ir.Neg:
			f.emit(OpNeg, t, rx, 0, 0, 0, 0)
		case ir.Not:
			f.emit(OpNot, t, rx, 0, 0, 0, 0)
		case ir.Sqrt:
			f.emit(OpSqrt, t, rx, 0, 0, 0, 0)
		case ir.Floor:
			f.emit(OpFloor, t, rx, 0, 0, 0, 0)
		case ir.Abs:
			f.emit(OpAbs, t, rx, 0, 0, 0, 0)
		default:
			e := f.rc.newErr(rerr{err: fmt.Errorf("interp: unknown unary op %v (line %d)", x.Op, line)})
			f.emit(OpErr, 0, 0, 0, 0, 0, e)
		}
		f.addCnt(1)
		return t

	case *ir.Call:
		return f.lowerCall(x, line, dst)

	default:
		e := f.rc.newErr(rerr{err: fmt.Errorf("interp: unknown expression %T (line %d)", x, line)})
		f.emit(OpErr, 0, 0, 0, 0, 0, e)
		return f.dstOr(dst)
	}
}

// lowerVarRead resolves a scalar read: the defined-check where the variable
// is not provably defined, the Load event where the tree engine would emit
// one, and the slot itself as the operand.
func (f *flow) lowerVarRead(name string, line int32) int {
	slot := f.slots[name]
	if !f.defined[name] {
		e := f.rc.newErr(rerr{err: fmt.Errorf("interp: read of undefined variable %q in %s (line %d)", name, f.fn.Name, line)})
		f.emit(OpCheckDef, slot, 0, 0, 0, 0, e)
	}
	if f.traced && f.induct[name] == 0 {
		f.emit(OpEmitLoadVar, slot, 0, 0, 0, uint32(line), f.rc.intern(name))
	}
	f.addCnt(1)
	return slot
}

// lowerExprInto lowers x and forces the result into dst (argument staging,
// loop-control temporaries).
func (f *flow) lowerExprInto(dst int, x ir.Expr, line int32) {
	f.lowerExprTo(x, line, dst)
}

var binOpcode = map[ir.BinOp]OpCode{
	ir.Add: OpAdd, ir.Sub: OpSub, ir.Mul: OpMul,
	ir.Lt: OpLt, ir.Le: OpLe, ir.Gt: OpGt, ir.Ge: OpGe,
	ir.Eq: OpEq, ir.Ne: OpNe, ir.Min: OpMin, ir.Max: OpMax,
}

// binKOpcode: constant-fused forms, right-constant. mirrorK maps the
// operator usable when the constant is on the LEFT of a comparison
// (k < x  ≡  x > k).
var binKOpcode = map[ir.BinOp]OpCode{
	ir.Add: OpAddK, ir.Sub: OpSubK, ir.Mul: OpMulK,
	ir.Lt: OpLtK, ir.Le: OpLeK, ir.Gt: OpGtK, ir.Ge: OpGeK,
	ir.Eq: OpEqK, ir.Ne: OpNeK,
}

var mirrorK = map[ir.BinOp]ir.BinOp{
	ir.Add: ir.Add, ir.Mul: ir.Mul,
	ir.Lt: ir.Gt, ir.Le: ir.Ge, ir.Gt: ir.Lt, ir.Ge: ir.Le,
	ir.Eq: ir.Eq, ir.Ne: ir.Ne,
}

func (f *flow) lowerBin(x *ir.Bin, line int32, dst int) int {
	switch x.Op {
	case ir.And:
		return f.lowerAndOr(x, line, true, dst)
	case ir.Or:
		return f.lowerAndOr(x, line, false, dst)

	case ir.Div, ir.Mod:
		rl := f.lowerExpr(x.L, line)
		rr := f.lowerExpr(x.R, line)
		t := f.dstOr(dst)
		op := OpDiv
		if x.Op == ir.Mod {
			op = OpMod
		}
		f.emit(op, t, rl, rr, 0, uint32(line), 0)
		f.addCnt(1)
		return t
	}

	if f.rc.fuse {
		// Constant-operand fusion. A Const operand contributes no events
		// and no count, so evaluation order is preserved trivially.
		if k, ok := x.R.(ir.Const); ok {
			if op, ok := binKOpcode[x.Op]; ok {
				rl := f.lowerExpr(x.L, line)
				t := f.dstOr(dst)
				f.emit(op, t, rl, f.rc.kidx(k.V), 0, 0, 0)
				f.addCnt(1)
				return t
			}
		}
		if k, ok := x.L.(ir.Const); ok {
			if m, ok := mirrorK[x.Op]; ok {
				rr := f.lowerExpr(x.R, line)
				t := f.dstOr(dst)
				f.emit(binKOpcode[m], t, rr, f.rc.kidx(k.V), 0, 0, 0)
				f.addCnt(1)
				return t
			}
		}
		// Multiply-accumulate: Add/Sub with a Mul operand lowers to one
		// instruction; the operand lowering order matches the tree
		// engine's left-to-right evaluation, so events stay in order.
		if x.Op == ir.Add || x.Op == ir.Sub {
			if m, ok := x.R.(*ir.Bin); ok && m.Op == ir.Mul {
				rl := f.lowerExpr(x.L, line)
				rx := f.lowerExpr(m.L, line)
				ry := f.lowerExpr(m.R, line)
				t := f.dstOr(dst)
				f.addCnt(2)
				if ry < 256 {
					op := OpMulAdd
					if x.Op == ir.Sub {
						op = OpMulSub
					}
					f.emit(op, t, rl, rx, ry, 0, 0)
				} else {
					tm := f.temp()
					f.emit(OpMul, tm, rx, ry, 0, 0, 0)
					f.emit(binOpcode[x.Op], t, rl, tm, 0, 0, 0)
				}
				return t
			}
			if m, ok := x.L.(*ir.Bin); ok && m.Op == ir.Mul && x.Op == ir.Add {
				rx := f.lowerExpr(m.L, line)
				ry := f.lowerExpr(m.R, line)
				rr := f.lowerExpr(x.R, line)
				t := f.dstOr(dst)
				f.addCnt(2)
				if ry < 256 {
					f.emit(OpMulAdd, t, rr, rx, ry, 0, 0)
				} else {
					tm := f.temp()
					f.emit(OpMul, tm, rx, ry, 0, 0, 0)
					f.emit(OpAdd, t, tm, rr, 0, 0, 0)
				}
				return t
			}
		}
	}

	rl := f.lowerExpr(x.L, line)
	rr := f.lowerExpr(x.R, line)
	t := f.dstOr(dst)
	if op, ok := binOpcode[x.Op]; ok {
		f.emit(op, t, rl, rr, 0, 0, 0)
		f.addCnt(1)
	} else {
		e := f.rc.newErr(rerr{err: fmt.Errorf("interp: unknown binary op %v (line %d)", x.Op, line)})
		f.emit(OpErr, 0, 0, 0, 0, 0, e)
	}
	return t
}

// lowerAndOr lowers short-circuit And/Or. The right operand's instructions
// (events, errors, count contributions) execute only on the fall-through
// path, exactly as the tree engine skips its evaluation; the pending static
// count is flushed into the scope accumulator around the branch.
func (f *flow) lowerAndOr(x *ir.Bin, line int32, isAnd bool, dst int) int {
	rl := f.lowerExpr(x.L, line)
	f.addCnt(1)
	f.flushCnt()
	t := f.dstOr(dst)
	lShort := f.newLabel()
	lEnd := f.newLabel()
	if isAnd {
		f.emitJump(OpJumpZ, rl, 0, lShort)
	} else {
		f.emitJump(OpJumpNZ, rl, 0, lShort)
	}
	rr := f.lowerExpr(x.R, line)
	f.emit(OpBoolNorm, t, rr, 0, 0, 0, 0)
	f.flushCnt()
	f.emitJump(OpJump, 0, 0, lEnd)
	f.place(lShort)
	if isAnd {
		f.emit(OpConst, t, f.rc.kidx(0), 0, 0, 0, 0)
	} else {
		f.emit(OpConst, t, f.rc.kidx(1), 0, 0, 0, 0)
	}
	f.place(lEnd)
	return t
}

func (f *flow) lowerCall(x *ir.Call, line int32, dst int) int {
	fi, ok := f.rc.funcIdx[x.Fn]
	if !ok {
		e := f.rc.newErr(rerr{err: fmt.Errorf("interp: call to unknown function %q (line %d)", x.Fn, line)})
		f.emit(OpErr, 0, 0, 0, 0, 0, e)
		return f.dstOr(dst)
	}
	// Arguments are staged in consecutive temporaries; the Call op copies
	// them into the callee frame untraced (parameter binding is register
	// traffic, as in the tree engine).
	argBase := f.nnamed + f.tempTop
	for range x.Args {
		f.temp()
	}
	acc := false
	for _, ax := range x.Args {
		if needsAcc(ax) {
			acc = true
			break
		}
	}
	f.beginCnt(acc)
	f.addCnt(1)
	for i, ax := range x.Args {
		f.lowerExprInto(argBase+i, ax, line)
	}
	f.endCntEmit(0, line)
	t := f.dstOr(dst)
	f.emit(OpCall, t, fi, argBase, 0, uint32(line), 0)
	// The callee's operations are counted inside the call; the call
	// contributes nothing to the parent scope.
	return t
}

// lowerElemLoad lowers an array element read. 1-D and safe 2-D accesses are
// single fused ops; everything else builds the flat index with per-dimension
// checked Idx0/IdxN steps.
func (f *flow) lowerElemLoad(x *ir.Elem, line int32, dst int) int {
	am := f.rc.arrIdx[x.Arr]
	meta := &f.rc.arrays[am]
	if len(x.Idx) == 1 {
		ri := f.lowerExpr(x.Idx[0], line)
		f.addCnt(1)
		e := f.rc.errOOBSite(x.Arr, 0, meta.d0, line)
		t := f.dstOr(dst)
		if f.traced {
			f.emit(OpLd1T, t, ri, am, 0, 0, e)
		} else {
			f.emit(OpLd1, t, ri, am, 0, 0, e)
		}
		f.addCnt(1)
		return t
	}
	if len(x.Idx) == 2 && am < 256 && f.exprSafe(x.Idx[1]) {
		r0 := f.lowerExpr(x.Idx[0], line)
		f.addCnt(1)
		r1 := f.lowerExpr(x.Idx[1], line)
		f.addCnt(1)
		e0 := f.rc.errOOBSite(x.Arr, 0, meta.d0, line)
		f.rc.errOOBSite(x.Arr, 1, meta.d1, line) // e0+1
		t := f.dstOr(dst)
		if f.traced {
			f.emit(OpLd2T, t, r0, r1, am, 0, e0)
		} else {
			f.emit(OpLd2, t, r0, r1, am, 0, e0)
		}
		f.addCnt(1)
		return t
	}
	acc := f.lowerElemIndex(x, am, meta, line)
	t := f.dstOr(dst)
	if f.traced {
		f.emit(OpLdFlatT, t, acc, am, 0, uint32(line), 0)
	} else {
		f.emit(OpLdFlat, t, acc, am, 0, 0, 0)
	}
	f.addCnt(1)
	return t
}

// lowerElemIndex builds a checked flat index into acc, one dimension at a
// time — check dimension d before evaluating dimension d+1, the tree
// engine's order.
func (f *flow) lowerElemIndex(x *ir.Elem, am int, meta *arrMeta, line int32) int {
	acc := f.temp()
	for d, ix := range x.Idx {
		ri := f.lowerExpr(ix, line)
		f.addCnt(1)
		e := f.rc.errOOBSite(x.Arr, d, meta.dims[d], line)
		if d == 0 {
			f.emit(OpIdx0, acc, ri, am, 0, 0, e)
		} else {
			f.emit(OpIdxN, acc, ri, am, d, 0, e)
		}
	}
	return acc
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (f *flow) lowerStmts(stmts []ir.Stmt) {
	for _, s := range stmts {
		f.lowerStmt(s)
	}
}

func (f *flow) lowerStmt(s ir.Stmt) {
	mark := f.tempTop
	defer func() { f.tempTop = mark }()
	line := int32(s.Pos())
	f.emit(OpStep, 0, 0, 0, 0, uint32(line), 0)
	switch s := s.(type) {
	case *ir.Assign:
		f.lowerAssign(s, line)

	case *ir.For:
		f.lowerFor(s, line)

	case *ir.While:
		f.lowerWhile(s, line)

	case *ir.If:
		f.beginCnt(needsAcc(s.Cond))
		rc := f.lowerExpr(s.Cond, line)
		f.endCntEmit(1, line)
		lElse := f.newLabel()
		lEnd := f.newLabel()
		f.emitJump(OpJumpZ, rc, 0, lElse)
		saved := copyDefined(f.defined)
		f.lowerStmts(s.Then)
		thenDef, thenTerm := f.defined, f.terminated
		f.defined, f.terminated = copyDefined(saved), false
		f.emitJump(OpJump, 0, 0, lEnd)
		f.place(lElse)
		f.lowerStmts(s.Else)
		elseDef, elseTerm := f.defined, f.terminated
		f.place(lEnd)
		switch {
		case thenTerm && elseTerm:
			f.defined, f.terminated = saved, true
		case thenTerm:
			f.defined, f.terminated = elseDef, false
		case elseTerm:
			f.defined, f.terminated = thenDef, false
		default:
			f.defined, f.terminated = intersectDefined(thenDef, elseDef), false
		}

	case *ir.Return:
		if s.Val != nil {
			f.beginCnt(needsAcc(s.Val))
			rv := f.lowerExpr(s.Val, line)
			f.endCntEmit(1, line)
			f.emitLoopUnwind()
			f.emit(OpRet, rv, 0, 0, 0, 0, 0)
		} else {
			f.emitLoopUnwind()
			f.emit(OpRetZ, 0, 0, 0, 0, 0, 0)
		}
		f.terminated = true

	case *ir.Break:
		if len(f.loops) == 0 {
			e := f.rc.newErr(rerr{err: fmt.Errorf("interp: break outside loop in %s", f.fn.Name)})
			f.emit(OpErr, 0, 0, 0, 0, 0, e)
		} else {
			f.emitJump(OpJump, 0, 0, f.loops[len(f.loops)-1].exitLabel)
		}
		f.terminated = true

	case *ir.ExprStmt:
		f.beginCnt(needsAcc(s.X))
		f.lowerExpr(s.X, line)
		f.endCntEmit(0, line) // unconditionally, a zero count included

	default:
		e := f.rc.newErr(rerr{err: fmt.Errorf("interp: unknown statement %T at line %d", s, s.Pos())})
		f.emit(OpErr, 0, 0, 0, 0, 0, e)
	}
}

// emitLoopUnwind emits the LoopExit events of every loop enclosing a Return,
// innermost first — the tree engine's deferred exits.
func (f *flow) emitLoopUnwind() {
	if !f.traced {
		return
	}
	for i := len(f.loops) - 1; i >= 0; i-- {
		f.emit(OpEmitLoopExit, 0, 0, 0, 0, 0, f.loops[i].nameIdx)
	}
}

func (f *flow) lowerAssign(s *ir.Assign, line int32) {
	switch dst := s.Dst.(type) {
	case ir.Var:
		slot := f.slots[dst.Name]
		f.beginCnt(needsAcc(s.Src))
		// The source lowers straight into the destination slot: every
		// lowering defers its write to its final instruction, after all
		// reads, so self-referential assignments (t = t + a[i]) are safe
		// and an aborted evaluation leaves the slot untouched — the tree
		// engine's write-after-full-evaluation order.
		f.lowerExprTo(s.Src, line, slot)
		if !f.defined[dst.Name] {
			f.emit(OpSetDef, slot, 0, 0, 0, 0, 0)
			f.defined[dst.Name] = true
		}
		if f.traced && f.rc.fuse && f.cntIsStatic() && f.induct[dst.Name] == 0 {
			if cnt := f.cnts[len(f.cnts)-1].static + 1; cnt <= 0xffff {
				f.endCnt()
				f.emit(OpEmitStoreVarC, slot, 0, int(cnt), 0, uint32(line), f.rc.intern(dst.Name))
				return
			}
		}
		f.endCntEmit(1, line) // the store itself
		if f.traced && f.induct[dst.Name] == 0 {
			f.emit(OpEmitStoreVar, slot, 0, 0, 0, uint32(line), f.rc.intern(dst.Name))
		}

	case *ir.Elem:
		acc := needsAcc(s.Src)
		for _, ix := range dst.Idx {
			acc = acc || needsAcc(ix)
		}
		f.beginCnt(acc)
		rs := f.lowerExpr(s.Src, line)
		f.lowerElemStore(rs, dst, line)
	}
}

// lowerElemStore places the checked store of rs into dst, with the traced
// stream's Count event between the bounds checks and the Store event —
// the tree engine's order (an out-of-range store aborts before counting).
func (f *flow) lowerElemStore(rs int, dst *ir.Elem, line int32) {
	am := f.rc.arrIdx[dst.Arr]
	meta := &f.rc.arrays[am]
	if len(dst.Idx) == 1 {
		ri := f.lowerExpr(dst.Idx[0], line)
		f.addCnt(1)
		e := f.rc.errOOBSite(dst.Arr, 0, meta.d0, line)
		if !f.traced {
			f.emit(OpSt1, rs, ri, am, 0, 0, e)
			f.endCnt()
			return
		}
		if f.cntIsStatic() {
			cnt := f.cnts[len(f.cnts)-1].static + 1
			f.endCnt()
			f.emit(OpSt1TC, rs, ri, am, 0, uint32(cnt), e)
			return
		}
		// Dynamic count: check via Idx0, then Count, then the store.
		acc := f.temp()
		f.emit(OpIdx0, acc, ri, am, 0, 0, e)
		f.endCntEmit(1, line)
		f.emit(OpStFlatT, rs, acc, am, 0, uint32(line), 0)
		return
	}
	if len(dst.Idx) == 2 && am < 256 && f.exprSafe(dst.Idx[1]) {
		r0 := f.lowerExpr(dst.Idx[0], line)
		f.addCnt(1)
		r1 := f.lowerExpr(dst.Idx[1], line)
		f.addCnt(1)
		e0 := f.rc.errOOBSite(dst.Arr, 0, meta.d0, line)
		f.rc.errOOBSite(dst.Arr, 1, meta.d1, line) // e0+1
		if !f.traced {
			f.emit(OpSt2, rs, r0, r1, am, 0, e0)
			f.endCnt()
			return
		}
		if f.cntIsStatic() {
			cnt := f.cnts[len(f.cnts)-1].static + 1
			f.endCnt()
			f.emit(OpSt2TC, rs, r0, r1, am, uint32(cnt), e0)
			return
		}
		acc := f.temp()
		f.emit(OpIdx0, acc, r0, am, 0, 0, e0)
		f.emit(OpIdxN, acc, r1, am, 1, 0, e0+1)
		f.endCntEmit(1, line)
		f.emit(OpStFlatT, rs, acc, am, 0, uint32(line), 0)
		return
	}
	acc := f.lowerElemIndex(dst, am, meta, line)
	if !f.traced {
		f.emit(OpStFlat, rs, acc, am, 0, 0, 0)
		f.endCnt()
		return
	}
	f.endCntEmit(1, line)
	f.emit(OpStFlatT, rs, acc, am, 0, uint32(line), 0)
}

func (f *flow) lowerFor(s *ir.For, line int32) {
	f.beginCnt(needsAcc(s.Start) || needsAcc(s.End) || needsAcc(s.Step))
	tCur := f.temp()
	tEnd := f.temp()
	tStep := f.temp()
	f.lowerExprInto(tCur, s.Start, line)
	f.lowerExprInto(tEnd, s.End, line)
	f.lowerExprInto(tStep, s.Step, line)
	if k, ok := s.Step.(ir.Const); !ok || k.V <= 0 {
		e := f.rc.newErr(rerr{loop: s.LoopID, line: line})
		f.emit(OpForPrep, tStep, 0, 0, 0, 0, e)
	}
	f.endCntEmit(0, line) // Count(n1+n2+n3), after the step check

	slot := f.slots[s.Var]
	if !f.defined[s.Var] {
		// The tree engine creates the slot before iterating, so the
		// variable reads as defined (and zero) even after a zero-trip loop.
		f.emit(OpSetDef, slot, 0, 0, 0, 0, 0)
		f.defined[s.Var] = true
	}
	loopIdx := f.rc.intern(s.LoopID)
	errLoop := f.rc.newErr(rerr{loop: s.LoopID, line: line, nameIdx: loopIdx})
	lHead := f.newLabel()
	lExit := f.newLabel()
	var tIter int
	if f.traced {
		f.emit(OpEmitLoopEnter, 0, 0, 0, 0, uint32(line), loopIdx)
		tIter = f.temp()
		f.emit(OpConst, tIter, f.rc.kidx(0), 0, 0, 0, 0)
	}
	f.loops = append(f.loops, loopCtx{exitLabel: lExit, nameIdx: loopIdx})
	f.induct[s.Var]++

	f.place(lHead)
	tracedFused := f.traced && f.rc.fuse && tIter < 256
	if tracedFused {
		// The traced header superinstruction: test, gate, bind, LoopIter and
		// the header's Count(2) in one dispatch.
		f.asm = append(f.asm, ains{op: OpForIterT, a: slot, b: tCur, c: tEnd, d: tIter, hi: errLoop, tgt: lExit})
	} else {
		f.asm = append(f.asm, ains{op: OpForIter, a: slot, b: tCur, c: tEnd, hi: errLoop, tgt: lExit})
	}
	lBody := f.newLabel()
	f.place(lBody)
	if f.traced && !tracedFused {
		f.emit(OpEmitLoopIter, tIter, 0, 0, 0, 0, loopIdx)
		f.emit(OpEmitCount, 0, 0, 0, 0, uint32(line), 2) // compare + increment
	}
	saved := copyDefined(f.defined)
	f.lowerStmts(s.Body)
	f.defined, f.terminated = saved, false
	switch {
	case !f.traced && f.rc.fuse && tEnd < 256:
		// The fused backedge: advance, test, gate and bind in one dispatch,
		// jumping straight to the body.
		f.asm = append(f.asm, ains{op: OpForNext, a: slot, b: tCur, c: tStep, d: tEnd, hi: errLoop, tgt: lBody})
	case tracedFused:
		f.asm = append(f.asm, ains{op: OpForAdvT, a: tCur, b: tStep, tgt: lHead})
	default:
		f.emit(OpAdd, tCur, tCur, tStep, 0, 0, 0)
		f.emitJump(OpJump, 0, 0, lHead)
	}
	f.place(lExit)
	if f.traced {
		f.emit(OpEmitLoopExit, 0, 0, 0, 0, 0, loopIdx)
	}
	f.induct[s.Var]--
	f.loops = f.loops[:len(f.loops)-1]
}

func (f *flow) lowerWhile(s *ir.While, line int32) {
	loopIdx := f.rc.intern(s.LoopID)
	errLoop := f.rc.newErr(rerr{loop: s.LoopID})
	var tIter int
	if f.traced {
		f.emit(OpEmitLoopEnter, 0, 0, 0, 0, uint32(line), loopIdx)
		tIter = f.temp()
		f.emit(OpConst, tIter, f.rc.kidx(0), 0, 0, 0, 0)
	}
	lHead := f.newLabel()
	lExit := f.newLabel()
	f.loops = append(f.loops, loopCtx{exitLabel: lExit, nameIdx: loopIdx})
	f.place(lHead)
	f.emit(OpStepLoop, 0, 0, 0, 0, 0, errLoop)
	f.beginCnt(needsAcc(s.Cond))
	rc := f.lowerExpr(s.Cond, line)
	f.endCntEmit(1, line)
	f.emitJump(OpJumpZ, rc, 0, lExit)
	if f.traced {
		f.emit(OpEmitLoopIter, tIter, 0, 0, 0, 0, loopIdx)
	}
	saved := copyDefined(f.defined)
	f.lowerStmts(s.Body)
	f.defined, f.terminated = saved, false
	f.emitJump(OpJump, 0, 0, lHead)
	f.place(lExit)
	if f.traced {
		f.emit(OpEmitLoopExit, 0, 0, 0, 0, 0, loopIdx)
	}
	f.loops = f.loops[:len(f.loops)-1]
}

func copyDefined(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersectDefined(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a))
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Peephole fusion and assembly
// ---------------------------------------------------------------------------

// loCarriesLine marks the fusable ops whose lo field is the statement's
// source line (shared with the fused gate) rather than free for it.
var loCarriesLine = map[OpCode]bool{
	OpDiv: true, OpMod: true, OpLd1Mod: true, OpSt1Mod: true,
	OpEmitLoadVar: true, OpEmitLoopEnter: true, OpEmitCount: true,
}

// fusePeephole runs the adjacent-pair superinstruction selection over the
// lowered list: read-modify-write triples, mod+access index wraps,
// compare+branch pairs, and finally the statement gate folded into the
// following instruction. Patterns never straddle a jump target and only
// consume single-use temporaries, which the lowering discipline guarantees
// for the registers matched here.
func (f *flow) fusePeephole() {
	labelAt := make(map[int]bool, len(f.labels))
	for _, idx := range f.labels {
		if idx >= 0 {
			labelAt[idx] = true
		}
	}
	isTemp := func(r int) bool { return r >= f.nnamed }
	prevLive := func(i int) int {
		for j := i - 1; j >= 0; j-- {
			if !f.asm[j].dead {
				return j
			}
		}
		return -1
	}

	// Read-modify-write: Ld1 t0 / bin t1,t0,r / St1 t1 on the same index
	// register and array collapse to one op with a single bounds check
	// (the checks are identical twins from the same statement).
	rmw := map[OpCode]OpCode{OpAdd: OpAddTo1, OpSub: OpSubTo1, OpMul: OpMulTo1, OpMin: OpMinTo1, OpMax: OpMaxTo1}
	for i := range f.asm {
		st := &f.asm[i]
		if st.op != OpSt1 || labelAt[i] {
			continue
		}
		bi := prevLive(i)
		if bi < 0 || labelAt[bi] {
			continue
		}
		bin := &f.asm[bi]
		to1, ok := rmw[bin.op]
		if !ok {
			continue
		}
		li := prevLive(bi)
		if li < 0 || labelAt[li] {
			continue
		}
		ld := &f.asm[li]
		if ld.op != OpLd1 ||
			ld.b != st.b || ld.c != st.c || // same index register and array
			bin.b != ld.a || bin.a != st.a || // loaded value -> bin -> stored value
			!isTemp(ld.a) || !isTemp(bin.a) ||
			bin.c == ld.a || bin.a == st.b ||
			f.rc.errs[ld.hi].line != f.rc.errs[st.hi].line {
			continue
		}
		*st = ains{op: to1, a: bin.c, b: st.b, c: st.c, hi: ld.hi, tgt: -1}
		ld.dead, bin.dead = true, true
	}

	// Index wrap: Mod t / Ld1|St1 over t becomes one op carrying both the
	// mod-by-zero line and the bounds-check site.
	for i := range f.asm {
		ac := &f.asm[i]
		if (ac.op != OpLd1 && ac.op != OpSt1) || labelAt[i] || ac.c >= 256 {
			continue
		}
		mi := prevLive(i)
		if mi < 0 || labelAt[mi] {
			continue
		}
		md := &f.asm[mi]
		if md.op != OpMod || md.a != ac.b || !isTemp(md.a) || md.a == ac.a {
			continue
		}
		op := OpLd1Mod
		if ac.op == OpSt1 {
			op = OpSt1Mod
		}
		*ac = ains{op: op, a: ac.a, b: md.b, c: md.c, d: ac.c, lo: md.lo, hi: ac.hi, tgt: -1}
		md.dead = true
	}

	// Compare + JumpZ: the branch tests the comparison directly. EmitCount
	// ops between them (traced while/if conditions) are skipped — they
	// neither read nor write the condition register.
	cmpJ := map[OpCode]OpCode{OpLt: OpJLtF, OpLe: OpJLeF, OpGt: OpJGtF, OpGe: OpJGeF, OpEq: OpJEqF, OpNe: OpJNeF}
	for i := range f.asm {
		jz := &f.asm[i]
		if jz.op != OpJumpZ || labelAt[i] {
			continue
		}
		ci := prevLive(i)
		for ci >= 0 && f.asm[ci].op == OpEmitCount && !labelAt[ci] {
			ci = prevLive(ci)
		}
		if ci < 0 || labelAt[ci] {
			continue
		}
		cmp := &f.asm[ci]
		jf, ok := cmpJ[cmp.op]
		if !ok || cmp.a != jz.a || !isTemp(cmp.a) {
			continue
		}
		*jz = ains{op: jf, a: cmp.b, b: cmp.c, tgt: jz.tgt}
		cmp.dead = true
	}

	// Whole-statement reduction fusion: the dominant hot shape in the
	// committed opcode-pair profile is the multiply-accumulate statement
	// t = t + A[..]*B[..]. Its gate, variable-read event, both element
	// loads and the accumulating store collapse into one extended Mac op —
	// a single dispatch per loop-body statement. The two loads' error
	// sites are consecutive allocations from the same statement, which the
	// match verifies along with single-use temporaries and name/line
	// agreement between the traced bracket events.
	for i := range f.asm {
		ma := &f.asm[i]
		if ma.op != OpMulAdd || labelAt[i] || ma.b != ma.a {
			continue
		}
		l2i := prevLive(i)
		if l2i < 0 || labelAt[l2i] {
			continue
		}
		l2 := &f.asm[l2i]
		l1i := prevLive(l2i)
		if l1i < 0 || labelAt[l1i] || f.asm[l1i].op != l2.op {
			continue
		}
		l1 := &f.asm[l1i]
		var mop OpCode
		var span uint32
		traced := false
		switch l1.op {
		case OpLd1:
			mop, span = OpMac1, 1
		case OpLd2:
			mop, span = OpMac2, 2
		case OpLd1T:
			mop, span, traced = OpMac1T, 1, true
		case OpLd2T:
			mop, span, traced = OpMac2T, 2, true
		default:
			continue
		}
		if l1.a != ma.c || l2.a != ma.d || !isTemp(l1.a) || !isTemp(l2.a) ||
			l1.a == l2.a || ma.a == l1.a || ma.a == l2.a ||
			l2.hi != l1.hi+span {
			continue
		}
		pi := prevLive(l1i)
		if pi < 0 {
			continue
		}
		sti := -1
		if traced {
			if labelAt[pi] {
				continue
			}
			lv := &f.asm[pi]
			if lv.op != OpEmitLoadVar || lv.a != ma.a {
				continue
			}
			si := i + 1
			for si < len(f.asm) && f.asm[si].dead {
				si++
			}
			if si >= len(f.asm) || labelAt[si] {
				continue
			}
			st := &f.asm[si]
			if st.op != OpEmitStoreVarC || st.a != ma.a || st.hi != lv.hi || st.c > 255 {
				continue
			}
			sti = si
			pi = prevLive(pi)
			if pi < 0 {
				continue
			}
		}
		step := &f.asm[pi]
		if step.op != OpStep || f.rc.errs[l1.hi].line != int32(step.lo) {
			continue
		}
		m := ains{op: mop, ext: true, a: ma.a, lo: step.lo, hi: l1.hi, tgt: -1}
		if span == 2 {
			if l1.d >= 256 {
				continue
			}
			m.b, m.c, m.d = l1.b, l1.c, l1.d
			m.x, m.y, m.z = l2.b, l2.c, l2.d
		} else {
			if l1.c >= 256 {
				continue
			}
			m.b, m.c, m.d = l1.b, l2.b, l1.c
			m.z = l2.c
		}
		if traced {
			lv := &f.asm[pi+1]
			m.w = f.asm[sti].c
			m.lo2 = lv.hi
			lv.dead = true
			f.asm[sti].dead = true
		}
		*step = m
		l1.dead, l2.dead, ma.dead = true, true, true
	}

	// Statement gate last, so it can fuse with superinstructions formed
	// above: Step + X becomes StepX whenever X has a fused form and no jump
	// lands between them.
	for i := range f.asm {
		step := &f.asm[i]
		if step.op != OpStep || step.dead {
			continue
		}
		ni := i + 1
		for ni < len(f.asm) && f.asm[ni].dead {
			ni++
		}
		if ni >= len(f.asm) || labelAt[ni] {
			continue
		}
		next := &f.asm[ni]
		fusedOp := stepFused[next.op]
		if fusedOp == OpInvalid {
			continue
		}
		if loCarriesLine[next.op] && next.lo != step.lo {
			continue
		}
		merged := *next
		merged.op = fusedOp
		if !loCarriesLine[next.op] {
			merged.lo = step.lo
		}
		*step = merged
		next.dead = true
	}
}

// assemble resolves labels and packs the live instructions into the final
// two-word encoding.
func (f *flow) assemble() []uint64 {
	offs := make([]int, len(f.asm)+1)
	w := 0
	for i := range f.asm {
		offs[i] = w
		if !f.asm[i].dead {
			if f.asm[i].ext {
				w += 4
			} else {
				w += 2
			}
		}
	}
	offs[len(f.asm)] = w
	code := make([]uint64, 0, w)
	for i := range f.asm {
		ins := &f.asm[i]
		if ins.dead {
			continue
		}
		lo := ins.lo
		if ins.tgt >= 0 {
			lo = uint32(offs[f.labels[ins.tgt]])
		}
		code = append(code,
			uint64(ins.op)|uint64(ins.a)<<8|uint64(ins.b)<<24|uint64(ins.c)<<40|uint64(ins.d)<<56,
			uint64(lo)|uint64(ins.hi)<<32)
		if ins.ext {
			code = append(code,
				uint64(ins.x)<<8|uint64(ins.y)<<24|uint64(ins.z)<<40|uint64(ins.w)<<56,
				uint64(ins.lo2))
		}
	}
	return code
}
