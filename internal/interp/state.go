package interp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// State is an observable snapshot of a finished (or aborted) run: the final
// contents of every global array, the return value, the executed statement
// count and how the run ended. It is the unit the differential fuzzing
// oracle compares — two pipeline configurations that claim not to affect
// execution must produce byte-for-byte identical States.
type State struct {
	// Program is the program name.
	Program string
	// Steps is the number of statements executed.
	Steps int64
	// Return is the entry function's return value (0 unless Completed).
	Return float64
	// Err is the error text of a failed run ("" on success).
	Err string
	// Completed is true when the run finished without error.
	Completed bool
	// StepLimited is true when the run aborted via Options.MaxSteps
	// (deterministic truncation — still comparable).
	StepLimited bool
	// DeadlineExceeded is true when the run aborted via Options.Deadline
	// (wall-clock truncation — NOT comparable, see Comparable).
	DeadlineExceeded bool
	// Arrays holds the final contents of every global array, keyed by name.
	Arrays map[string][]float64
}

// Snapshot captures the machine's observable state after Run returned
// runErr. Pass the error Run returned (nil on success).
func (m *Machine) Snapshot(runErr error) *State {
	st := &State{
		Program:   m.prog.Name,
		Steps:     m.steps,
		Return:    m.ret,
		Completed: runErr == nil,
		Arrays:    make(map[string][]float64, len(m.prog.Arrays)),
	}
	if runErr != nil {
		st.Err = runErr.Error()
		st.StepLimited = errors.Is(runErr, ErrMaxSteps)
		st.DeadlineExceeded = errors.Is(runErr, ErrDeadline)
	}
	for _, a := range m.prog.Arrays {
		st.Arrays[a.Name] = m.Array(a.Name)
	}
	return st
}

// Comparable reports whether two states of the same program are a fair
// differential pair. A run truncated by the wall clock (ErrDeadline) stops
// at a non-deterministic statement, so any divergence from it is noise, not
// signal; every other outcome — completion, runtime error, or the
// deterministic MaxSteps truncation — is comparable.
func (s *State) Comparable(o *State) bool {
	return !s.DeadlineExceeded && !o.DeadlineExceeded
}

// Diff compares two states and returns a list of human-readable differences
// (empty when the states agree). Runs that are not Comparable yield no
// differences: the caller must not interpret wall-clock truncation as
// divergence. Float comparison is bitwise (NaN equals NaN): both runs
// execute the identical statement sequence, so even rounding must agree.
func (s *State) Diff(o *State) []string {
	if !s.Comparable(o) {
		return nil
	}
	var diffs []string
	if s.Program != o.Program {
		diffs = append(diffs, fmt.Sprintf("program: %q vs %q", s.Program, o.Program))
	}
	if s.Steps != o.Steps {
		diffs = append(diffs, fmt.Sprintf("steps: %d vs %d", s.Steps, o.Steps))
	}
	if s.Completed != o.Completed {
		diffs = append(diffs, fmt.Sprintf("completed: %v (%s) vs %v (%s)", s.Completed, s.Err, o.Completed, o.Err))
	} else if !s.Completed && s.Err != o.Err {
		diffs = append(diffs, fmt.Sprintf("error: %q vs %q", s.Err, o.Err))
	}
	if s.Completed && o.Completed && math.Float64bits(s.Return) != math.Float64bits(o.Return) {
		diffs = append(diffs, fmt.Sprintf("return: %v vs %v", s.Return, o.Return))
	}
	names := make(map[string]bool, len(s.Arrays))
	for n := range s.Arrays {
		names[n] = true
	}
	for n := range o.Arrays {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		a, aok := s.Arrays[n]
		b, bok := o.Arrays[n]
		if !aok || !bok {
			diffs = append(diffs, fmt.Sprintf("array %s: present %v vs %v", n, aok, bok))
			continue
		}
		if len(a) != len(b) {
			diffs = append(diffs, fmt.Sprintf("array %s: length %d vs %d", n, len(a), len(b)))
			continue
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				diffs = append(diffs, fmt.Sprintf("array %s[%d]: %v vs %v", n, i, a[i], b[i]))
				break // one differing element per array is enough signal
			}
		}
	}
	return diffs
}
