package interp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pardetect/internal/ir"
)

// spinProg builds a program whose entry loops long enough to trip any small
// step or time budget while writing observable array state.
func spinProg() *ir.Program {
	b := ir.NewBuilder("spin")
	b.GlobalArray("A", 64)
	f := b.Function("main")
	f.For("i", ir.C(0), ir.C(1_000_000), func(k *ir.Block) {
		// Three statements per iteration so the step counter sweeps every
		// residue class of the deadline poll stride (a power of two).
		k.Assign("t", ir.AddE(ir.V("i"), ir.C(1)))
		k.Store("A", []ir.Expr{&ir.Bin{Op: ir.Mod, L: ir.V("t"), R: ir.C(64)}}, ir.V("i"))
	})
	f.Ret(ir.C(0))
	return b.Build()
}

func runWith(t *testing.T, opts Options) *State {
	t.Helper()
	m, err := New(spinProg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run()
	return m.Snapshot(runErr)
}

func TestSnapshotCompleted(t *testing.T) {
	b := ir.NewBuilder("done")
	b.GlobalArray("A", 4)
	f := b.Function("main")
	f.Store("A", []ir.Expr{ir.C(2)}, ir.C(7))
	f.Ret(ir.C(42))
	p := b.Build()

	m, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run()
	st := m.Snapshot(runErr)
	if !st.Completed || st.Err != "" || st.StepLimited || st.DeadlineExceeded {
		t.Fatalf("unexpected completion state: %+v", st)
	}
	if st.Return != 42 {
		t.Fatalf("return = %v, want 42", st.Return)
	}
	if got := st.Arrays["A"]; len(got) != 4 || got[2] != 7 {
		t.Fatalf("array snapshot = %v", got)
	}
	if diffs := st.Diff(st); len(diffs) != 0 {
		t.Fatalf("self-diff reported %v", diffs)
	}
}

// TestSnapshotMaxStepsComparable pins the property the differential oracle
// depends on: a MaxSteps abort is deterministic, so two runs with the same
// limit — one traced, one not — truncate at the same statement and must
// snapshot identically.
func TestSnapshotMaxStepsComparable(t *testing.T) {
	const limit = 5_000
	a := runWith(t, Options{MaxSteps: limit})
	b := runWith(t, Options{MaxSteps: limit, Tracer: NopTracer{}})

	for _, st := range []*State{a, b} {
		if st.Completed || !st.StepLimited || st.DeadlineExceeded {
			t.Fatalf("expected a step-limited snapshot, got %+v", st)
		}
		if !strings.Contains(st.Err, "step limit") {
			t.Fatalf("error text %q does not mention the step limit", st.Err)
		}
	}
	if !a.Comparable(b) {
		t.Fatal("step-limited runs must stay comparable")
	}
	if diffs := a.Diff(b); len(diffs) != 0 {
		t.Fatalf("traced vs untraced step-limited runs diverged: %v", diffs)
	}
}

// TestSnapshotDeadlineNotComparable pins the complementary property: a
// wall-clock abort truncates at a non-deterministic statement, so such
// snapshots must be excluded from comparison rather than reported as
// divergence.
func TestSnapshotDeadlineNotComparable(t *testing.T) {
	dead := runWith(t, Options{Deadline: time.Now().Add(-time.Second)})
	if dead.Completed || !dead.DeadlineExceeded {
		t.Fatalf("expected a deadline-exceeded snapshot, got %+v", dead)
	}
	if dead.StepLimited {
		t.Fatalf("deadline abort misclassified as step-limited: %+v", dead)
	}

	full := runWith(t, Options{})
	if !full.Completed {
		t.Fatalf("unbounded run failed: %+v", full)
	}
	if dead.Comparable(full) || full.Comparable(dead) {
		t.Fatal("deadline-truncated run must not be comparable")
	}
	// Even though the states plainly differ (step counts, array contents),
	// Diff must stay silent: truncation noise is not divergence.
	if diffs := dead.Diff(full); len(diffs) != 0 {
		t.Fatalf("Diff reported truncation noise as divergence: %v", diffs)
	}
}

func TestSnapshotErrMaxStepsSentinel(t *testing.T) {
	m, err := New(spinProg(), Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := m.Run()
	if !errors.Is(runErr, ErrMaxSteps) {
		t.Fatalf("step-limit error %v does not wrap ErrMaxSteps", runErr)
	}
	if errors.Is(runErr, ErrDeadline) {
		t.Fatalf("step-limit error %v wrongly wraps ErrDeadline", runErr)
	}
}

func TestDiffDetectsDivergence(t *testing.T) {
	a := runWith(t, Options{})
	b := runWith(t, Options{})
	b.Steps++
	b.Arrays["A"][3] = -1
	diffs := a.Diff(b)
	if len(diffs) != 2 {
		t.Fatalf("want 2 differences (steps, array), got %v", diffs)
	}
	if !strings.Contains(diffs[0], "steps") || !strings.Contains(diffs[1], "array A[3]") {
		t.Fatalf("unexpected diff content: %v", diffs)
	}
}
