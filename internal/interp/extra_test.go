package interp

import (
	"math"
	"testing"

	"pardetect/internal/ir"
)

func TestReturnAndStepsAccessors(t *testing.T) {
	b := ir.NewBuilder("acc")
	f := b.Function("main")
	f.Assign("x", ir.C(41))
	f.Ret(ir.AddE(ir.V("x"), ir.C(1)))
	m, err := New(b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Return() != 42 {
		t.Fatalf("Return() = %g", m.Return())
	}
	if m.Steps() != 2 {
		t.Fatalf("Steps() = %d, want 2", m.Steps())
	}
	if m.Array("ghost") != nil {
		t.Fatal("unknown array must return nil")
	}
}

// TestAllBinaryOperators evaluates every binary operator through the
// machine, including both logical outcomes and the modulus error.
func TestAllBinaryOperators(t *testing.T) {
	eval := func(t *testing.T, op ir.BinOp, l, r float64) float64 {
		t.Helper()
		b := ir.NewBuilder("op")
		b.Function("main").Ret(&ir.Bin{Op: op, L: ir.C(l), R: ir.C(r)})
		m, _ := New(b.Build(), Options{})
		v, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cases := []struct {
		op   ir.BinOp
		l, r float64
		want float64
	}{
		{ir.Add, 2, 3, 5},
		{ir.Sub, 2, 3, -1},
		{ir.Mul, 2, 3, 6},
		{ir.Div, 6, 3, 2},
		{ir.Mod, 7, 3, 1},
		{ir.Lt, 1, 2, 1}, {ir.Lt, 2, 1, 0},
		{ir.Le, 2, 2, 1}, {ir.Le, 3, 2, 0},
		{ir.Gt, 3, 2, 1}, {ir.Gt, 2, 3, 0},
		{ir.Ge, 2, 2, 1}, {ir.Ge, 1, 2, 0},
		{ir.Eq, 5, 5, 1}, {ir.Eq, 5, 6, 0},
		{ir.Ne, 5, 6, 1}, {ir.Ne, 5, 5, 0},
		{ir.And, 1, 2, 1}, {ir.And, 1, 0, 0},
		{ir.Or, 0, 2, 1}, {ir.Or, 0, 0, 0},
		{ir.Min, 2, 3, 2},
		{ir.Max, 2, 3, 3},
	}
	for _, c := range cases {
		if got := eval(t, c.op, c.l, c.r); got != c.want {
			t.Errorf("%v(%g, %g) = %g, want %g", c.op, c.l, c.r, got, c.want)
		}
	}
	// Modulus by zero errors.
	b := ir.NewBuilder("mod0")
	b.Function("main").Ret(&ir.Bin{Op: ir.Mod, L: ir.C(1), R: ir.C(0)})
	m, _ := New(b.Build(), Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("modulus by zero must error")
	}
	// Negative unary through the machine.
	b2 := ir.NewBuilder("neg")
	b2.Function("main").Ret(&ir.Un{Op: ir.Neg, X: ir.C(5)})
	m2, _ := New(b2.Build(), Options{})
	if v, _ := m2.Run(); v != -5 {
		t.Fatalf("neg = %g", v)
	}
	// Not of non-zero.
	b3 := ir.NewBuilder("not")
	b3.Function("main").Ret(&ir.Un{Op: ir.Not, X: ir.C(3)})
	m3, _ := New(b3.Build(), Options{})
	if v, _ := m3.Run(); v != 0 {
		t.Fatalf("not(3) = %g", v)
	}
}

func TestWhileReturnsFromInside(t *testing.T) {
	b := ir.NewBuilder("wret")
	f := b.Function("main")
	f.Assign("i", ir.C(0))
	f.While(ir.C(1), func(k *ir.Block) {
		k.Assign("i", ir.AddE(ir.V("i"), ir.C(1)))
		k.If(ir.GeE(ir.V("i"), ir.C(5)), func(k2 *ir.Block) { k2.Ret(ir.V("i")) })
	})
	f.Ret(ir.C(-1))
	m, _ := New(b.Build(), Options{})
	v, err := m.Run()
	if err != nil || v != 5 {
		t.Fatalf("v=%g err=%v, want 5", v, err)
	}
}

func TestForReturnsFromInside(t *testing.T) {
	b := ir.NewBuilder("fret")
	f := b.Function("main")
	f.For("i", ir.C(0), ir.C(100), func(k *ir.Block) {
		k.If(ir.GeE(ir.V("i"), ir.C(7)), func(k2 *ir.Block) { k2.Ret(ir.V("i")) })
	})
	f.Ret(ir.C(-1))
	m, _ := New(b.Build(), Options{})
	if v, err := m.Run(); err != nil || v != 7 {
		t.Fatalf("v=%g err=%v, want 7", v, err)
	}
}

func TestWhileErrorInCondition(t *testing.T) {
	b := ir.NewBuilder("wcond")
	f := b.Function("main")
	f.While(ir.DivE(ir.C(1), ir.V("undefined")), func(k *ir.Block) {})
	f.Ret(ir.C(0))
	m, _ := New(b.Build(), Options{})
	if _, err := m.Run(); err == nil {
		t.Fatal("undefined variable in while condition must error")
	}
}

// TestNopTracerAndContextTrackerDefaults: the embeddable helpers must accept
// every event (compile-time interface check plus dynamic smoke calls).
func TestNopTracerAndContextTrackerDefaults(t *testing.T) {
	var n NopTracer
	var tr Tracer = n
	tr.Load(1, Ref{}, 1)
	tr.Store(1, Ref{}, 1)
	tr.LoopEnter("L", 1)
	tr.LoopIter("L", 0)
	tr.LoopExit("L")
	tr.CallEnter("f", 0)
	tr.CallExit("f")
	tr.Count(1, 1)

	var c ContextTracker
	var tc Tracer = &c
	tc.CallEnter("main", 0)
	tc.CallEnter("g", 3)
	tc.Load(1, Ref{}, 1)
	tc.Store(1, Ref{}, 1)
	tc.Count(1, 1)
	if got := c.CallStack(); len(got) != 2 || got[0] != "main" || got[1] != "g" {
		t.Fatalf("CallStack = %v", got)
	}
	tc.CallExit("g")
	tc.CallExit("main")
	tc.CallExit("underflow") // must not panic
	tc.LoopExit("underflow") // must not panic
	if math.IsNaN(0) {
		t.Fatal("unreachable")
	}
}
