//go:build ignore

// gen_ops.go generates the regvm opcode table and dispatch loop:
//
//	op_codes.go — OpCode constants, opNames, the step-fusion table
//	op_exec.go  — the exec/execPairs dispatch switches
//
// Run it via `go generate ./internal/interp` (or `make gen`). The two
// outputs are committed; CI regenerates them and fails on any diff, so the
// table can never drift from this spec.
//
// Each op is a spec: a name, the operand fields its body reads, and the
// case body itself. Operand decoding is derived from the body — only the
// fields an op actually mentions are decoded, so a two-operand op pays
// nothing for the unused fields. Two macros expand in bodies:
//
//	$GATE  — the per-statement step/deadline gate ($lo is the source line)
//	$LGATE — the per-iteration step gate of loops ($hi is the loop's
//	         step-limit error site)
//
// Ops flagged stepFuse get a generated Step<Name> superinstruction with the
// statement gate prepended, eliminating one dispatch per statement for every
// statement whose first real instruction is fusable. The selection of which
// ops are fusable (and which multi-op superinstructions exist at all) comes
// from the committed opcode-pair profile; see DESIGN.md §10.
//
// Instruction encoding (two uint64 words per instruction, pc advances by 2):
//
//	word 0: op:8 | a:16 | b:16 | c:16 | d:8
//	word 1: lo:32 | hi:32
//
// lo holds source lines, jump targets (absolute word offsets) or static
// counts; hi holds error-site / name-table indices.
//
// Ops flagged ext use a four-word encoding (pc advances by 4): words 2 and 3
// repeat the layout of words 0 and 1, decoded as x:16 | y:16 | z:16 | w:8
// and lo2:32 | hi2:32. They exist for the whole-statement superinstructions
// (the reduction multiply-accumulate family), whose operand sets exceed one
// word pair.
package main

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"regexp"
	"strings"
)

type op struct {
	name     string
	doc      string
	body     string
	endsPC   bool // body assigns pc itself (jumps, returns)
	stepFuse bool // generate a Step<name> gate-fused variant
	skipCase bool // no dispatch case (falls to default)
	ext      bool // extended 4-word encoding (second operand pair x/y/z/w + lo2/hi2)
}

const gate = `steps++
if steps > v.maxSteps || (v.hasDeadline && steps&(deadlineCheckEvery-1) == 0) {
	if err := v.gateSlow(steps, int32(lo)); err != nil {
		v.steps = steps
		return 0, err
	}
}`

const lgate = `steps++
if steps > v.maxSteps {
	v.steps = steps
	return 0, v.errLoopLimit(hi)
}`

var ops = []op{
	{name: "Invalid", doc: "unassigned opcode; executing it is a bug", skipCase: true},

	// Control.
	{name: "Ret", doc: "return regs[a] from the current function", endsPC: true, stepFuse: true, body: `v.steps = steps
return regs[a], nil`},
	{name: "RetZ", doc: "return 0 from the current function", endsPC: true, stepFuse: true, body: `v.steps = steps
return 0, nil`},
	{name: "Jump", doc: "unconditional jump to lo", endsPC: true, body: `pc = int(lo)`},
	{name: "JumpZ", doc: "jump to lo when regs[a] == 0", endsPC: true, body: `if regs[a] == 0 {
	pc = int(lo)
} else {
	pc += 2
}`},
	{name: "JumpNZ", doc: "jump to lo when regs[a] != 0", endsPC: true, body: `if regs[a] != 0 {
	pc = int(lo)
} else {
	pc += 2
}`},
	{name: "Err", doc: "fail with the precomputed error errs[hi]", endsPC: true, stepFuse: true, body: `v.steps = steps
return 0, v.errStatic(hi)`},
	{name: "Step", doc: "statement gate: count the statement at line lo against MaxSteps/Deadline", body: `$GATE`},
	{name: "StepLoop", doc: "loop-iteration gate: count against MaxSteps with the in-loop error errs[hi]", body: `$LGATE`},
	{name: "Call", doc: "call function b with args staged at slot c, result into regs[a]; lo is the call line", body: `v.steps = steps
v.bufn = bufn
ret, err := v.call(b, base+c, int32(lo))
steps = v.steps
bufn = v.bufn
if err != nil {
	return 0, err
}
regs = v.regs[base:]
regs[a] = ret`},
	{name: "CheckDef", doc: "fail with errs[hi] when slot a is not a defined variable", stepFuse: true, body: `if v.flags[base+a] == 0 {
	v.steps = steps
	return 0, v.errStatic(hi)
}`},
	{name: "SetDef", doc: "mark slot a as a defined variable", stepFuse: true, body: `v.flags[base+a] = 1`},
	{name: "Const", doc: "regs[a] = consts[b]", stepFuse: true, body: `regs[a] = consts[b]`},
	{name: "Mov", doc: "regs[a] = regs[b]", stepFuse: true, body: `regs[a] = regs[b]`},

	// Binary operators (a = dst, b = left, c = right).
	{name: "Add", doc: "regs[a] = regs[b] + regs[c]", stepFuse: true, body: `regs[a] = regs[b] + regs[c]`},
	{name: "Sub", doc: "regs[a] = regs[b] - regs[c]", stepFuse: true, body: `regs[a] = regs[b] - regs[c]`},
	{name: "Mul", doc: "regs[a] = regs[b] * regs[c]", stepFuse: true, body: `regs[a] = regs[b] * regs[c]`},
	{name: "Div", doc: "regs[a] = regs[b] / regs[c], failing on zero at line lo", stepFuse: true, body: `r := regs[c]
if r == 0 {
	v.steps = steps
	return 0, v.errDivZero(int32(lo))
}
regs[a] = regs[b] / r`},
	{name: "Mod", doc: "regs[a] = fmod(regs[b], regs[c]), failing on zero at line lo", stepFuse: true, body: `r := regs[c]
if r == 0 {
	v.steps = steps
	return 0, v.errModZero(int32(lo))
}
regs[a] = fmod(regs[b], r)`},
	{name: "Lt", doc: "regs[a] = regs[b] < regs[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] < regs[c])`},
	{name: "Le", doc: "regs[a] = regs[b] <= regs[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] <= regs[c])`},
	{name: "Gt", doc: "regs[a] = regs[b] > regs[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] > regs[c])`},
	{name: "Ge", doc: "regs[a] = regs[b] >= regs[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] >= regs[c])`},
	{name: "Eq", doc: "regs[a] = regs[b] == regs[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] == regs[c])`},
	{name: "Ne", doc: "regs[a] = regs[b] != regs[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] != regs[c])`},
	{name: "Min", doc: "regs[a] = min(regs[b], regs[c])", stepFuse: true, body: `regs[a] = math.Min(regs[b], regs[c])`},
	{name: "Max", doc: "regs[a] = max(regs[b], regs[c])", stepFuse: true, body: `regs[a] = math.Max(regs[b], regs[c])`},

	// Unary operators (a = dst, b = operand).
	{name: "Neg", doc: "regs[a] = -regs[b]", stepFuse: true, body: `regs[a] = -regs[b]`},
	{name: "Not", doc: "regs[a] = !regs[b]", stepFuse: true, body: `if regs[b] == 0 {
	regs[a] = 1
} else {
	regs[a] = 0
}`},
	{name: "Sqrt", doc: "regs[a] = sqrt(regs[b])", stepFuse: true, body: `regs[a] = math.Sqrt(regs[b])`},
	{name: "Floor", doc: "regs[a] = floor(regs[b])", stepFuse: true, body: `regs[a] = math.Floor(regs[b])`},
	{name: "Abs", doc: "regs[a] = abs(regs[b])", stepFuse: true, body: `regs[a] = math.Abs(regs[b])`},
	{name: "BoolNorm", doc: "regs[a] = regs[b] normalized to 0/1", body: `regs[a] = b2f(regs[b] != 0)`},

	// Constant-fused binaries (a = dst, b = left, c = const index).
	{name: "AddK", doc: "regs[a] = regs[b] + consts[c]", stepFuse: true, body: `regs[a] = regs[b] + consts[c]`},
	{name: "SubK", doc: "regs[a] = regs[b] - consts[c]", stepFuse: true, body: `regs[a] = regs[b] - consts[c]`},
	{name: "MulK", doc: "regs[a] = regs[b] * consts[c]", stepFuse: true, body: `regs[a] = regs[b] * consts[c]`},
	{name: "LtK", doc: "regs[a] = regs[b] < consts[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] < consts[c])`},
	{name: "LeK", doc: "regs[a] = regs[b] <= consts[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] <= consts[c])`},
	{name: "GtK", doc: "regs[a] = regs[b] > consts[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] > consts[c])`},
	{name: "GeK", doc: "regs[a] = regs[b] >= consts[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] >= consts[c])`},
	{name: "EqK", doc: "regs[a] = regs[b] == consts[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] == consts[c])`},
	{name: "NeK", doc: "regs[a] = regs[b] != consts[c]", stepFuse: true, body: `regs[a] = b2f(regs[b] != consts[c])`},

	// Fused compare-and-branch: jump to lo when the comparison is FALSE
	// (the compiled shape of `if`/`while` conditions).
	{name: "JLtF", doc: "jump to lo unless regs[a] < regs[b]", endsPC: true, body: `if regs[a] < regs[b] {
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "JLeF", doc: "jump to lo unless regs[a] <= regs[b]", endsPC: true, body: `if regs[a] <= regs[b] {
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "JGtF", doc: "jump to lo unless regs[a] > regs[b]", endsPC: true, body: `if regs[a] > regs[b] {
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "JGeF", doc: "jump to lo unless regs[a] >= regs[b]", endsPC: true, body: `if regs[a] >= regs[b] {
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "JEqF", doc: "jump to lo unless regs[a] == regs[b]", endsPC: true, body: `if regs[a] == regs[b] {
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "JNeF", doc: "jump to lo unless regs[a] != regs[b]", endsPC: true, body: `if regs[a] != regs[b] {
	pc += 2
} else {
	pc = int(lo)
}`},

	// Fused multiply-accumulate (reduction bodies). The explicit float64
	// conversion forbids the compiler from contracting the multiply and the
	// add into a hardware FMA, which would break bit-parity with the tree
	// engine on architectures that fuse.
	{name: "MulAdd", doc: "regs[a] = regs[b] + regs[c]*regs[d], no FMA contraction", stepFuse: true, body: `regs[a] = regs[b] + float64(regs[c]*regs[d])`},
	{name: "MulSub", doc: "regs[a] = regs[b] - regs[c]*regs[d], no FMA contraction", stepFuse: true, body: `regs[a] = regs[b] - float64(regs[c]*regs[d])`},

	// Dynamic operation counting (short-circuit And/Or make a statement's
	// count data-dependent; acc slots accumulate it at run time).
	{name: "AccAdd", doc: "regs[a] += hi (operation-count accumulator)", body: `regs[a] += float64(hi)`},
	{name: "EmitCount", doc: "emit Count(hi) at line lo", stepFuse: true, body: `v.emitCount(int64(hi), int32(lo))`},
	{name: "EmitCountAcc", doc: "emit Count(regs[a]+hi) at line lo", body: `v.emitCount(int64(regs[a])+int64(hi), int32(lo))`},

	// Array element access, untraced. c (or d where c is an index) names the
	// array; hi is the out-of-range error site.
	{name: "Ld1", doc: "regs[a] = arr[c][regs[b]] with bounds check errs[hi]", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
regs[a] = mem[t.off+i]`},
	{name: "St1", doc: "arr[c][regs[b]] = regs[a] with bounds check errs[hi]", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] = regs[a]`},
	{name: "Ld2", doc: "regs[a] = arr[d][regs[b]][regs[c]] with bounds checks errs[hi], errs[hi+1]", stepFuse: true, body: `t := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
i1 := int(regs[c])
if uint(i1) >= uint(t.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
regs[a] = mem[t.off+i0*t.d1+i1]`},
	{name: "St2", doc: "arr[d][regs[b]][regs[c]] = regs[a] with bounds checks errs[hi], errs[hi+1]", stepFuse: true, body: `t := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
i1 := int(regs[c])
if uint(i1) >= uint(t.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
mem[t.off+i0*t.d1+i1] = regs[a]`},
	{name: "Idx0", doc: "start a flat index: check regs[b] against dim d of arr[c], regs[a] = index", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.dims[d]) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
regs[a] = float64(i)`},
	{name: "IdxN", doc: "extend a flat index: regs[a] = regs[a]*dim + checked regs[b]", body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.dims[d]) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
regs[a] = regs[a]*float64(t.dims[d]) + float64(i)`},
	{name: "LdFlat", doc: "regs[a] = arr[c] at checked flat index regs[b]", body: `t := &v.p.arrays[c]
regs[a] = mem[t.off+int(regs[b])]`},
	{name: "StFlat", doc: "arr[c] at checked flat index regs[b] = regs[a]", body: `t := &v.p.arrays[c]
mem[t.off+int(regs[b])] = regs[a]`},

	// Array element access, traced. The event line is recovered from the
	// op's error site, so no second word is spent on it.
	{name: "Ld1T", doc: "Ld1 plus a Load event", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
regs[a] = mem[t.off+i]
v.emitAccess(EvLoad, t.abase+uint64(i), t.nameIdx, true, v.p.errs[hi].line)`},
	{name: "Ld2T", doc: "Ld2 plus a Load event", stepFuse: true, body: `t := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
i1 := int(regs[c])
if uint(i1) >= uint(t.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
regs[a] = mem[t.off+i0*t.d1+i1]
v.emitAccess(EvLoad, t.abase+uint64(i0*t.d1+i1), t.nameIdx, true, v.p.errs[hi].line)`},
	{name: "LdFlatT", doc: "LdFlat plus a Load event at line lo", body: `t := &v.p.arrays[c]
i := int(regs[b])
regs[a] = mem[t.off+i]
v.emitAccess(EvLoad, t.abase+uint64(i), t.nameIdx, true, int32(lo))`},
	{name: "StFlatT", doc: "StFlat plus a Store event at line lo", body: `t := &v.p.arrays[c]
i := int(regs[b])
mem[t.off+i] = regs[a]
v.emitAccess(EvStore, t.abase+uint64(i), t.nameIdx, true, int32(lo))`},
	{name: "St1TC", doc: "traced 1-D store: check, write, emit Count(lo) then Store", body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] = regs[a]
line := v.p.errs[hi].line
v.emitCount(int64(lo), line)
v.emitAccess(EvStore, t.abase+uint64(i), t.nameIdx, true, line)`},
	{name: "St2TC", doc: "traced 2-D store: checks, write, emit Count(lo) then Store", body: `t := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
i1 := int(regs[c])
if uint(i1) >= uint(t.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
mem[t.off+i0*t.d1+i1] = regs[a]
line := v.p.errs[hi].line
v.emitCount(int64(lo), line)
v.emitAccess(EvStore, t.abase+uint64(i0*t.d1+i1), t.nameIdx, true, line)`},

	// Read-modify-write superinstructions (untraced load-op-store on the
	// same element; one bounds check stands for the identical pair).
	{name: "AddTo1", doc: "arr[c][regs[b]] += regs[a]", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] += regs[a]`},
	{name: "SubTo1", doc: "arr[c][regs[b]] -= regs[a]", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] -= regs[a]`},
	{name: "MulTo1", doc: "arr[c][regs[b]] *= regs[a]", stepFuse: true, body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] *= regs[a]`},
	{name: "MinTo1", doc: "arr[c][regs[b]] = min(element, regs[a])", body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] = math.Min(mem[t.off+i], regs[a])`},
	{name: "MaxTo1", doc: "arr[c][regs[b]] = max(element, regs[a])", body: `t := &v.p.arrays[c]
i := int(regs[b])
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] = math.Max(mem[t.off+i], regs[a])`},

	// Index-wrap superinstructions (the `a[i % n]` shape; untraced).
	{name: "Ld1Mod", doc: "regs[a] = arr[d][fmod(regs[b], regs[c])], mod-by-zero at line lo", stepFuse: true, body: `r := regs[c]
if r == 0 {
	v.steps = steps
	return 0, v.errModZero(int32(lo))
}
i := int(fmod(regs[b], r))
t := &v.p.arrays[d]
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
regs[a] = mem[t.off+i]`},
	{name: "St1Mod", doc: "arr[d][fmod(regs[b], regs[c])] = regs[a], mod-by-zero at line lo", stepFuse: true, body: `r := regs[c]
if r == 0 {
	v.steps = steps
	return 0, v.errModZero(int32(lo))
}
i := int(fmod(regs[b], r))
t := &v.p.arrays[d]
if uint(i) >= uint(t.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i)
}
mem[t.off+i] = regs[a]`},

	// Trace-event emitters (traced streams only).
	{name: "EmitLoadVar", doc: "emit Load of variable slot a (name hi) at line lo", stepFuse: true, body: `v.emitAccess(EvLoad, scalarAddr(base+a), hi, false, int32(lo))`},
	{name: "EmitStoreVar", doc: "emit Store of variable slot a (name hi) at line lo", body: `v.emitAccess(EvStore, scalarAddr(base+a), hi, false, int32(lo))`},
	{name: "EmitStoreVarC", doc: "emit Count(c) then Store of variable slot a (name hi) at line lo — a traced scalar assignment's epilogue in one dispatch", body: `v.emitCount(int64(c), int32(lo))
v.emitAccess(EvStore, scalarAddr(base+a), hi, false, int32(lo))`},
	{name: "EmitLoopEnter", doc: "emit LoopEnter(name hi) at line lo and push the loop on the unwind stack", stepFuse: true, body: `v.emitLoop(EvLoopEnter, hi, int32(lo))
v.lstack = append(v.lstack, hi)`},
	{name: "EmitLoopExit", doc: "emit LoopExit(name hi) and pop the unwind stack", body: `v.emitLoop(EvLoopExit, hi, 0)
v.lstack = v.lstack[:len(v.lstack)-1]`},
	{name: "EmitLoopIter", doc: "emit LoopIter(name hi, iteration regs[a]) and advance the counter", body: `v.emitIter(hi, int64(regs[a]))
regs[a]++`},

	// Counted loops. ForIter is the header (test, gate, bind the induction
	// variable); ForNext is the untraced backedge superinstruction fusing
	// step+test+backedge into one dispatch.
	{name: "ForPrep", doc: "fail with errs[hi] when the step regs[a] is not positive", body: `if regs[a] <= 0 {
	v.steps = steps
	return 0, v.errPosStep(hi, regs[a])
}`},
	{name: "ForIter", doc: "loop header: exit to lo unless regs[b] < regs[c]; else gate and bind regs[a]", endsPC: true, body: `if regs[b] < regs[c] {
	$LGATE
	regs[a] = regs[b]
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "ForNext", doc: "fused backedge: regs[b] += regs[c]; loop to lo while regs[b] < regs[d], gating and binding regs[a]", endsPC: true, body: `x := regs[b] + regs[c]
regs[b] = x
if x < regs[d] {
	$LGATE
	regs[a] = x
	pc = int(lo)
} else {
	pc += 2
}`},
	{name: "ForIterT", doc: "traced loop header: ForIter plus the LoopIter and Count(2) events (iteration counter regs[d], loop identity and line from errs[hi])", endsPC: true, body: `if regs[b] < regs[c] {
	$LGATE
	regs[a] = regs[b]
	e := &v.p.errs[hi]
	v.emitIter(e.nameIdx, int64(regs[d]))
	regs[d]++
	v.emitCount(2, e.line)
	pc += 2
} else {
	pc = int(lo)
}`},
	{name: "ForAdvT", doc: "traced backedge: regs[a] += regs[b]; jump to the header at lo", endsPC: true, body: `regs[a] += regs[b]
pc = int(lo)`},

	// Whole-statement reduction superinstructions (extended encoding): the
	// scalar multiply-accumulate statement t = t + A[..]*B[..] — gate,
	// bounds checks and (traced) all five events in one dispatch. hi is the
	// base of the loads' consecutive bounds-check sites; lo2 is t's name,
	// w the statement's static operation count.
	{name: "Mac1", ext: true, doc: "gated regs[a] += arr[d][regs[b]] * arr[z][regs[c]] (err sites hi, hi+1; line lo)", body: `$GATE
t1 := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t1.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
t2 := &v.p.arrays[z]
i1 := int(regs[c])
if uint(i1) >= uint(t2.d0) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
regs[a] += float64(mem[t1.off+i0] * mem[t2.off+i1])`},
	{name: "Mac1T", ext: true, doc: "Mac1 plus its event stream: Load a, Load arr1, Load arr2, Count(w), Store a", body: `$GATE
line := int32(lo)
v.emitAccess(EvLoad, scalarAddr(base+a), lo2, false, line)
t1 := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t1.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
v.emitAccess(EvLoad, t1.abase+uint64(i0), t1.nameIdx, true, line)
t2 := &v.p.arrays[z]
i1 := int(regs[c])
if uint(i1) >= uint(t2.d0) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
v.emitAccess(EvLoad, t2.abase+uint64(i1), t2.nameIdx, true, line)
v.emitCount(int64(w), line)
regs[a] += float64(mem[t1.off+i0] * mem[t2.off+i1])
v.emitAccess(EvStore, scalarAddr(base+a), lo2, false, line)`},
	{name: "Mac2", ext: true, doc: "gated regs[a] += arr[d][regs[b]][regs[c]] * arr[z][regs[x]][regs[y]] (err sites hi..hi+3; line lo)", body: `$GATE
t1 := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t1.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
i1 := int(regs[c])
if uint(i1) >= uint(t1.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
t2 := &v.p.arrays[z]
i2 := int(regs[x])
if uint(i2) >= uint(t2.d0) {
	v.steps = steps
	return 0, v.errOOB(hi+2, i2)
}
i3 := int(regs[y])
if uint(i3) >= uint(t2.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+3, i3)
}
regs[a] += float64(mem[t1.off+i0*t1.d1+i1] * mem[t2.off+i2*t2.d1+i3])`},
	{name: "Mac2T", ext: true, doc: "Mac2 plus its event stream: Load a, Load arr1, Load arr2, Count(w), Store a", body: `$GATE
line := int32(lo)
v.emitAccess(EvLoad, scalarAddr(base+a), lo2, false, line)
t1 := &v.p.arrays[d]
i0 := int(regs[b])
if uint(i0) >= uint(t1.d0) {
	v.steps = steps
	return 0, v.errOOB(hi, i0)
}
i1 := int(regs[c])
if uint(i1) >= uint(t1.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+1, i1)
}
p1 := i0*t1.d1 + i1
v.emitAccess(EvLoad, t1.abase+uint64(p1), t1.nameIdx, true, line)
t2 := &v.p.arrays[z]
i2 := int(regs[x])
if uint(i2) >= uint(t2.d0) {
	v.steps = steps
	return 0, v.errOOB(hi+2, i2)
}
i3 := int(regs[y])
if uint(i3) >= uint(t2.d1) {
	v.steps = steps
	return 0, v.errOOB(hi+3, i3)
}
p2 := i2*t2.d1 + i3
v.emitAccess(EvLoad, t2.abase+uint64(p2), t2.nameIdx, true, line)
v.emitCount(int64(w), line)
regs[a] += float64(mem[t1.off+p1] * mem[t2.off+p2])
v.emitAccess(EvStore, scalarAddr(base+a), lo2, false, line)`},
}

var ident = map[string]*regexp.Regexp{}

func uses(body, name string) bool {
	re, ok := ident[name]
	if !ok {
		re = regexp.MustCompile(`\b` + name + `\b`)
		ident[name] = re
	}
	return re.MatchString(body)
}

func expand(body string) string {
	body = strings.ReplaceAll(body, "$GATE", gate)
	body = strings.ReplaceAll(body, "$LGATE", lgate)
	return bufferDirect(body)
}

// splitArgs splits a call's argument text at top-level commas.
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}

// bufferDirect rewrites the v.emit* helper calls into direct stores through
// the dispatch loop's local event-buffer cursor. Inside the generated exec
// the compiler refuses to inline anything non-trivial (the function is far
// over the big-function threshold), so each helper would cost two real
// calls per event — the single largest line item in the traced profile.
// The rewrite brings an event down to one predictable branch and one store.
// Every return path then syncs the cursor back (run/call flush the buffer
// to deliver aborted prefixes), which retSync inserts mechanically.
func bufferDirect(body string) string {
	events := map[string]func([]string) string{
		"emitAccess": func(a []string) string {
			return fmt.Sprintf("Event{Kind: %s, A: %s, Name: %s, Array: %s, Line: %s}", a[0], a[1], a[2], a[3], a[4])
		},
		"emitCount": func(a []string) string {
			return fmt.Sprintf("Event{Kind: EvCount, A: uint64(%s), Line: %s}", a[0], a[1])
		},
		"emitIter": func(a []string) string {
			return fmt.Sprintf("Event{Kind: EvLoopIter, Name: %s, A: uint64(%s)}", a[0], a[1])
		},
		"emitLoop": func(a []string) string {
			return fmt.Sprintf("Event{Kind: %s, Name: %s, Line: %s}", a[0], a[1], a[2])
		},
	}
	for name, lit := range events {
		for {
			call := "v." + name + "("
			i := strings.Index(body, call)
			if i < 0 {
				break
			}
			depth, j := 1, i+len(call)
			for ; depth > 0; j++ {
				switch body[j] {
				case '(':
					depth++
				case ')':
					depth--
				}
			}
			repl := `if bufn == eventBufSize {
	v.bufn = bufn
	v.flush()
	bufn = 0
}
buf[bufn&(eventBufSize-1)] = ` + lit(splitArgs(body[i+len(call):j-1])) + `
bufn++`
			body = body[:i] + repl + body[j:]
		}
	}
	return body
}

var retLine = regexp.MustCompile(`(?m)^(\t*)return `)

// retSync prefixes every return with the event-cursor writeback.
func retSync(body string) string {
	return retLine.ReplaceAllString(body, "${1}v.bufn = bufn\n${1}return ")
}

// caseFor renders one switch case: operand decodes for the fields the body
// mentions, the body, and the default pc advance.
func caseFor(o op) string {
	body := retSync(expand(o.body))
	var b strings.Builder
	fmt.Fprintf(&b, "case Op%s:\n", o.name)
	if uses(body, "a") {
		b.WriteString("a := int(ins>>8) & 0xffff\n")
	}
	if uses(body, "b") {
		b.WriteString("b := int(ins>>24) & 0xffff\n")
	}
	if uses(body, "c") {
		b.WriteString("c := int(ins>>40) & 0xffff\n")
	}
	if uses(body, "d") {
		b.WriteString("d := int(ins >> 56)\n")
	}
	needLo, needHi := uses(body, "lo"), uses(body, "hi")
	if needLo || needHi {
		b.WriteString("aux := code[pc+1]\n")
	}
	if needLo {
		b.WriteString("lo := uint32(aux)\n")
	}
	if needHi {
		b.WriteString("hi := uint32(aux >> 32)\n")
	}
	if o.ext {
		if uses(body, "x") || uses(body, "y") || uses(body, "z") || uses(body, "w") {
			b.WriteString("ins2 := code[pc+2]\n")
		}
		if uses(body, "x") {
			b.WriteString("x := int(ins2>>8) & 0xffff\n")
		}
		if uses(body, "y") {
			b.WriteString("y := int(ins2>>24) & 0xffff\n")
		}
		if uses(body, "z") {
			b.WriteString("z := int(ins2>>40) & 0xffff\n")
		}
		if uses(body, "w") {
			b.WriteString("w := int(ins2 >> 56)\n")
		}
		if uses(body, "lo2") || uses(body, "hi2") {
			b.WriteString("aux2 := code[pc+3]\n")
		}
		if uses(body, "lo2") {
			b.WriteString("lo2 := uint32(aux2)\n")
		}
		if uses(body, "hi2") {
			b.WriteString("hi2 := uint32(aux2 >> 32)\n")
		}
	}
	b.WriteString(body)
	if !o.endsPC {
		if o.ext {
			b.WriteString("\npc += 4")
		} else {
			b.WriteString("\npc += 2")
		}
	}
	b.WriteString("\n\n")
	return b.String()
}

func main() {
	all := make([]op, 0, 2*len(ops))
	all = append(all, ops...)
	fused := map[string]string{} // base name -> fused name
	for _, o := range ops {
		if !o.stepFuse {
			continue
		}
		f := op{
			name:   "Step" + o.name,
			doc:    "statement gate fused with " + o.name,
			body:   "$GATE\n" + o.body,
			endsPC: o.endsPC,
		}
		fused[o.name] = f.name
		all = append(all, f)
	}
	if len(all) > 256 {
		fmt.Fprintf(os.Stderr, "gen_ops: %d opcodes exceed the uint8 space\n", len(all))
		os.Exit(1)
	}

	// op_codes.go: the opcode table.
	var oc bytes.Buffer
	oc.WriteString(header)
	oc.WriteString("// OpCode identifies one regvm instruction. The operand fields an op\n")
	oc.WriteString("// reads and its exact semantics are specified in gen_ops.go.\ntype OpCode uint8\n\n")
	oc.WriteString("const (\n")
	for i, o := range all {
		if i == 0 {
			fmt.Fprintf(&oc, "\tOp%s OpCode = iota // %s\n", o.name, o.doc)
		} else {
			fmt.Fprintf(&oc, "\tOp%s // %s\n", o.name, o.doc)
		}
	}
	oc.WriteString(")\n\n")
	oc.WriteString("// opNames indexes opcode names for disassembly and profiling.\nvar opNames = [...]string{\n")
	for _, o := range all {
		fmt.Fprintf(&oc, "\t%q,\n", o.name)
	}
	oc.WriteString("}\n\n")
	oc.WriteString("func (op OpCode) String() string {\n\tif int(op) < len(opNames) {\n\t\treturn opNames[op]\n\t}\n\treturn \"Op?\"\n}\n\n")
	oc.WriteString("// stepFused maps an opcode to its statement-gate-fused superinstruction\n// (OpInvalid when none exists).\nvar stepFused = [256]OpCode{\n")
	for _, o := range ops {
		if f, ok := fused[o.name]; ok {
			fmt.Fprintf(&oc, "\tOp%s: Op%s,\n", o.name, f)
		}
	}
	oc.WriteString("}\n\n")
	oc.WriteString("// opExt marks opcodes that use the extended four-word encoding;\n// everything that walks a code stream (dispatch, tests, tooling)\n// advances pc by 4 over them instead of 2.\nvar opExt = [256]bool{\n")
	for _, o := range all {
		if o.ext {
			fmt.Fprintf(&oc, "\tOp%s: true,\n", o.name)
		}
	}
	oc.WriteString("}\n")

	// op_exec.go: the twin dispatch loops. The switch cases are rendered
	// once and embedded in both exec (production) and execPairs (the
	// opcode-pair profiler behind ProfileOpcodePairs).
	var cases strings.Builder
	for _, o := range all {
		if o.skipCase {
			continue
		}
		cases.WriteString(caseFor(o))
	}
	var ox bytes.Buffer
	ox.WriteString(header)
	ox.WriteString("import (\n\t\"fmt\"\n\t\"math\"\n)\n\n")
	for _, fn := range []struct{ name, doc, prologue string }{
		{"exec", execDoc, ""},
		{"execPairs", pairsDoc, "\t\tv.pairs[uint16(prev)<<8|uint16(op)]++\n\t\tprev = op\n"},
	} {
		ox.WriteString(fn.doc)
		fmt.Fprintf(&ox, "func (v *rvm) %s(code []uint64, base int) (float64, error) {\n", fn.name)
		ox.WriteString("\tregs := v.regs[base:]\n\tmem := v.arrayMem\n\tconsts := v.p.consts\n\tsteps := v.steps\n\tpc := 0\n")
		ox.WriteString("\tvar buf *[eventBufSize]Event\n\tif v.buf != nil {\n\t\tbuf = (*[eventBufSize]Event)(v.buf)\n\t}\n\tbufn := v.bufn\n")
		if fn.name == "execPairs" {
			ox.WriteString("\tprev := OpInvalid\n")
		}
		ox.WriteString("\tfor {\n\t\tins := code[pc]\n\t\top := OpCode(ins & 0xff)\n")
		ox.WriteString(fn.prologue)
		ox.WriteString("\t\tswitch op {\n")
		ox.WriteString(cases.String())
		ox.WriteString("default:\nv.steps = steps\nv.bufn = bufn\nreturn 0, fmt.Errorf(\"interp: invalid opcode %d at pc %d\", op, pc)\n")
		ox.WriteString("\t\t}\n\t}\n}\n\n")
	}

	write("op_codes.go", oc.Bytes())
	write("op_exec.go", ox.Bytes())
}

const header = `// Code generated by gen_ops.go; DO NOT EDIT.

package interp

`

const execDoc = `// exec runs one function's instruction stream with its frame at base. The
// hot state — the frame's register window, array memory, the constant pool
// and the step counter — is hoisted into locals; every exit path (and the
// Call op, which re-enters exec for the callee) syncs v.steps back.
`

const pairsDoc = `// execPairs is exec's twin for superinstruction selection: identical
// semantics, plus a dynamic count of every executed opcode pair in v.pairs.
// Generated from the same case table, so the two cannot diverge.
`

func write(name string, src []byte) {
	out, err := format.Source(src)
	if err != nil {
		// Emit the unformatted source so the error is debuggable.
		os.WriteFile(name, src, 0o644)
		fmt.Fprintf(os.Stderr, "gen_ops: format %s: %v\n", name, err)
		os.Exit(1)
	}
	if err := os.WriteFile(name, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gen_ops: %v\n", err)
		os.Exit(1)
	}
}
