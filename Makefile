GO ?= go

.PHONY: build test bench ci serve router servesmoke servebench corpus corpussmoke corpusbench stats execbench fuzz fuzz-smoke goldens goldens-update hygiene gen opprofile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench reproduces the Table III timing run; pass OBS_OUT=FILE to also write
# a machine-readable telemetry baseline (see README "Observability").
bench:
	$(GO) test -bench BenchmarkTable3 -benchmem -run '^$$'

# ci runs the full gate: gofmt, vet, build, tests, and a race-detector pass
# over the scheduler and telemetry packages.
ci:
	sh scripts/ci.sh

# serve runs the pardetectd analysis service on its default address
# (localhost:7070); see README "The analysis service". servesmoke runs the
# end-to-end service smoke that CI runs (including the 3-backend router
# leg with a SIGKILL failover).
serve:
	$(GO) run ./cmd/pardetectd

# router fronts already-running pardetectd replicas with the sharded
# routing tier; override BACKENDS for your topology. See README "Scaling
# out" and DESIGN.md §9.
BACKENDS ?= http://127.0.0.1:7071,http://127.0.0.1:7072,http://127.0.0.1:7073
router:
	$(GO) run ./cmd/pardetectrouter -backends $(BACKENDS)

servesmoke:
	$(GO) run scripts/servesmoke.go

# servebench regenerates BENCH_serve.json, the committed serving baseline
# (fuzzer-driven load against an in-process pardetectd; throughput, latency
# quantiles, hit/reject rates, plus the 3-replica router affinity/failover
# leg) that scripts/servegate.go gates CI against.
servebench:
	$(GO) run ./cmd/servebench -dur 3s -c 4 -replicas 3 -out BENCH_serve.json

# corpus runs corpus mode over CORPUS_DIR (see README "Corpus mode"):
# analyse every wire-IR program under the directory, re-analysing only what
# changed since the last run. corpussmoke is the end-to-end CI smoke;
# corpusbench regenerates BENCH_corpus.json, the committed cold/warm/dirty
# baseline that scripts/corpusgate.go gates CI against.
CORPUS_DIR ?= corpus
corpus:
	$(GO) run ./cmd/parcorpus -dir $(CORPUS_DIR) -store-dir $(CORPUS_DIR)/.store

corpussmoke:
	$(GO) run scripts/corpussmoke.go

corpusbench:
	$(GO) run ./cmd/parcorpus -bench 1000 -bench-out BENCH_corpus.json

# hygiene runs the repo-hygiene gate CI runs first: no tracked binaries or
# scratch benchmark artifacts.
hygiene:
	sh scripts/hygiene.sh

# stats regenerates BENCH_obs.json, the committed per-phase telemetry
# baseline for the Table III benchmark apps.
stats:
	OBS_OUT=BENCH_obs.json $(GO) test -bench BenchmarkTable3 -benchmem -run '^$$'

# gen regenerates the regvm's opcode table and dispatch switch
# (internal/interp/op_codes.go, op_exec.go) from gen_ops.go. CI fails if
# the committed files drift from what this produces.
gen:
	$(GO) generate ./internal/interp

# opprofile regenerates internal/interp/testdata/opcode_pairs.json, the
# committed dynamic opcode-pair profile the regvm superinstruction set was
# selected from (DESIGN.md §10).
opprofile:
	$(GO) run scripts/opprofile.go

# execbench regenerates BENCH_exec.json, the committed engine-comparison
# baseline (tree vs bytecode vs regvm, traced vs untraced, plus full
# per-app analyses) that scripts/benchgate.go gates CI against.
execbench:
	EXEC_OUT=BENCH_exec.json $(GO) test -bench 'BenchmarkExec' -benchtime 20x -run '^$$' .

# fuzz hunts for new divergences: each native target runs for FUZZTIME
# (default 10 minutes) from the committed corpus in
# internal/fuzzer/testdata/fuzz. Reproduce any find with
# `pardetect -fuzz-seed <seed>`.
FUZZTIME ?= 10m
fuzz:
	for t in FuzzGenerate FuzzDifferential FuzzEngine FuzzMetamorphic; do \
		$(GO) test ./internal/fuzzer/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# fuzz-smoke is the bounded CI variant: 10 seconds per target, enough to
# replay the corpus and prove the harness still executes.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# goldens byte-compares the rendered Tables III-V against testdata/goldens/;
# goldens-update rewrites them after an intentional detector change.
goldens:
	sh scripts/goldens.sh check

goldens-update:
	sh scripts/goldens.sh update
