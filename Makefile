GO ?= go

.PHONY: build test bench ci stats

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench reproduces the Table III timing run; pass OBS_OUT=FILE to also write
# a machine-readable telemetry baseline (see README "Observability").
bench:
	$(GO) test -bench BenchmarkTable3 -benchmem -run '^$$'

# ci runs the full gate: gofmt, vet, build, tests, and a race-detector pass
# over the scheduler and telemetry packages.
ci:
	sh scripts/ci.sh

# stats regenerates BENCH_obs.json, the committed per-phase telemetry
# baseline for the Table III benchmark apps.
stats:
	OBS_OUT=BENCH_obs.json $(GO) test -bench BenchmarkTable3 -benchmem -run '^$$'
