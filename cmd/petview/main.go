// Command petview renders the paper's figures from the reproduction:
//
//	petview -fig 1    # Figure 1: CU division (read-compute-write)
//	petview -fig 2    # Figure 2: example Program Execution Tree
//	petview -fig 3    # Figure 3: cilksort() CU graph + classification
//	petview <bench>   # PET and CU graph of any built-in benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"pardetect/internal/apps"
	"pardetect/internal/core"
	"pardetect/internal/cu"
	"pardetect/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "render the paper figure (1..3)")
	flag.Parse()

	var out string
	var err error
	switch {
	case *fig == 1:
		out, err = report.Figure1()
	case *fig == 2:
		out, err = report.Figure2()
	case *fig == 3:
		out, err = report.Figure3()
	case flag.NArg() == 1:
		out, err = benchView(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: petview -fig <1|2|3>  |  petview <benchmark>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "petview: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func benchView(name string) (string, error) {
	app := apps.Get(name)
	if app == nil {
		return "", fmt.Errorf("unknown benchmark %q", name)
	}
	p := app.Build()
	res, err := core.Analyze(p, core.Options{})
	if err != nil {
		return "", err
	}
	out := res.Tree.String()
	if region, err := cu.FuncRegion(p, res.HotspotFunc); err == nil {
		g := cu.Build(p, region, res.Profile)
		out += "\n" + g.String()
	}
	return out, nil
}
