// Command servebench load-tests pardetectd (internal/server) with the
// fuzzer's seeded program generator and publishes a BENCH_serve.json
// (schema pardetect.serve/v1) summarising serving behavior: throughput,
// client-observed latency quantiles, hit/reject rates and an outcome
// breakdown, plus a /metrics scrape of the server under test.
//
// Usage:
//
//	servebench [-addr http://host:port] [-c 4] [-dur 3s] [-programs 16]
//	           [-hitpct 50] [-seed 1] [-engine tree] [-workers 0]
//	           [-queue 64] [-batch 8] [-restart] [-tenants 2] [-replicas 0]
//	           [-out BENCH_serve.json]
//
// With no -addr (the default) an in-process server is started on a loopback
// port and drained afterwards, so the benchmark is self-contained; -addr
// points it at an already-running pardetectd instead (-engine/-workers/
// -queue then only shape the in-process default and are ignored).
//
// Traffic model: -programs seeds are generated up front and replayed so the
// content-addressed cache can serve them (after each program's first visit,
// a hit or a singleflight join); with probability 1-hitpct/100 a request
// instead POSTs a never-repeated fresh seed, forcing a miss. Outcomes are
// read back from the response (X-Pardetect-Outcome, X-Pardetect-Cache,
// status), the same classification the server's own /metrics uses.
//
// Additional legs exercise the serving features beyond single-request
// load, each publishing its own result section:
//
//   - batch (-batch N, 0 disables): the replayed pool is POSTed to
//     /analyze/batch as NDJSON with parallel=N, twice — once against the
//     loaded cache, once more so every line is a hit — recording per-line
//     outcomes ("batch" section);
//   - warm restart (-restart): a throwaway in-process server with a
//     persistent store directory analyses the pool, drains (flushing the
//     write-behind queue), and a second server opened on the same directory
//     replays the pool; the hit rate of that replay is the restart
//     durability measure ("warm_restart" section);
//   - tenant fairness (-tenants V, 0 disables): an in-process server with a
//     per-tenant rate limit serves one hog tenant flooding unpaced and V
//     victim tenants paced under the limit; the hog is rejected, the victims
//     are not ("fairness" section);
//   - sharded router (-replicas N, 0 disables): N in-process replicas behind
//     an internal/router tier; the pool is requested twice through the router
//     (the replay must be a cache hit on the same home replica — affinity),
//     then one replica is killed and the pool replayed again (zero
//     client-visible errors, the victim's programs remapped — failover)
//     ("router" section);
//   - engine comparison (-engines, on by default): the pool is replayed once
//     per interpreter engine (tree, bytecode, regvm), each against its own
//     fresh cold-cache in-process server, recording per-engine analysis
//     latency ("engines" section).
//
// The batch leg targets whatever -addr selected; the restart, fairness,
// router and engines legs always build their own in-process servers because
// they must control the server's lifecycle, configuration or cache state.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pardetect/internal/fuzzer"
	"pardetect/internal/interp"
	"pardetect/internal/obs/metrics"
	"pardetect/internal/router"
	"pardetect/internal/server"
)

// Schema identifies the BENCH_serve.json layout.
const Schema = "pardetect.serve/v1"

type config struct {
	Addr        string `json:"addr,omitempty"`
	Concurrency int    `json:"concurrency"`
	DurationNS  int64  `json:"duration_ns"`
	Programs    int    `json:"programs"`
	HitPct      int    `json:"hit_pct"`
	Seed        uint64 `json:"seed"`
	Engine      string `json:"engine,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	Queue       int    `json:"queue"`
	Batch       int    `json:"batch,omitempty"`
	Restart     bool   `json:"restart,omitempty"`
	Tenants     int    `json:"tenants,omitempty"`
	Replicas    int    `json:"replicas,omitempty"`
	Engines     bool   `json:"engines,omitempty"`
}

type latency struct {
	P50    int64 `json:"p50"`
	P90    int64 `json:"p90"`
	P99    int64 `json:"p99"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

type serverSide struct {
	// HistogramBucketLines counts populated _bucket lines in the /metrics
	// scrape — the gate's "histograms actually recorded something" check.
	HistogramBucketLines int   `json:"histogram_bucket_lines"`
	ScrapeBytes          int   `json:"scrape_bytes"`
	CacheHits            int64 `json:"cache_hits"`
	CacheMisses          int64 `json:"cache_misses"`
	CacheJoins           int64 `json:"cache_joins"`
}

// batchResult summarises the /analyze/batch leg.
type batchResult struct {
	Requests  int64            `json:"requests"`
	Lines     int64            `json:"lines"`
	ElapsedNS int64            `json:"elapsed_ns"`
	Outcomes  map[string]int64 `json:"outcomes"`
}

// warmRestartResult summarises restart durability: the pool replayed against
// a fresh server that inherited only the persistent store directory.
type warmRestartResult struct {
	Programs int     `json:"programs"`
	Hits     int64   `json:"hits"`
	HitRate  float64 `json:"hit_rate"`
}

// fairnessResult summarises the hog-vs-victims leg.
type fairnessResult struct {
	TenantRPS        float64 `json:"tenant_rps"`
	Victims          int     `json:"victims"`
	HogRequests      int64   `json:"hog_requests"`
	HogRejects       int64   `json:"hog_rejects"`
	VictimRequests   int64   `json:"victim_requests"`
	VictimRejects    int64   `json:"victim_rejects"`
	HogRejectRate    float64 `json:"hog_reject_rate"`
	VictimRejectRate float64 `json:"victim_reject_rate"`
}

// routerResult summarises the sharded-router leg: cache affinity across an
// in-process replica cluster, and failover behaviour after one replica is
// killed mid-run.
type routerResult struct {
	Replicas int `json:"replicas"`
	Programs int `json:"programs"`
	// HomeHits counts pool programs whose replayed request was a cache hit
	// served by the same replica as the first request — the affinity measure.
	HomeHits    int64   `json:"home_hits"`
	HomeHitRate float64 `json:"home_hit_rate"`
	// BackendShare is how many pool programs each replica is home to,
	// labelled replica-0..N-1 in ring (sorted-URL) order.
	BackendShare map[string]int64 `json:"backend_share"`
	// The failover sub-leg: the whole pool replayed after killing the replica
	// that was home to pool program 0. Errors counts client-visible failures
	// (want 0); Remapped counts the victim's programs now served elsewhere.
	FailoverRequests int64 `json:"failover_requests"`
	FailoverErrors   int64 `json:"failover_errors"`
	FailoverRemapped int64 `json:"failover_remapped"`
}

// engineLatency is one engine's cell in the engines leg: the pool replayed
// once against a fresh (cold-cache) in-process server pinned to that engine,
// so every request is a real analysis under that engine's interpreter.
type engineLatency struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	P50NS    int64 `json:"p50_ns"`
	MeanNS   int64 `json:"mean_ns"`
	MaxNS    int64 `json:"max_ns"`
}

type result struct {
	Schema        string             `json:"schema"`
	Config        config             `json:"config"`
	Requests      int64              `json:"requests"`
	Errors        int64              `json:"errors"`
	ElapsedNS     int64              `json:"elapsed_ns"`
	ThroughputRPS float64            `json:"throughput_rps"`
	LatencyNS     latency            `json:"latency_ns"`
	HitRate       float64            `json:"hit_rate"`
	RejectRate    float64            `json:"reject_rate"`
	Outcomes      map[string]int64   `json:"outcomes"`
	Server        serverSide         `json:"server"`
	Batch         *batchResult       `json:"batch,omitempty"`
	WarmRestart   *warmRestartResult `json:"warm_restart,omitempty"`
	Fairness      *fairnessResult    `json:"fairness,omitempty"`
	Router        *routerResult      `json:"router,omitempty"`
	// Engines maps engine name → cold-cache pool-replay latency; see
	// runEnginesLeg for why each engine gets its own server.
	Engines map[string]*engineLatency `json:"engines,omitempty"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running pardetectd (empty: start one in-process)")
	c := flag.Int("c", 4, "concurrent client connections")
	dur := flag.Duration("dur", 3*time.Second, "load duration")
	programs := flag.Int("programs", 16, "replayed program pool size (cacheable traffic)")
	hitpct := flag.Int("hitpct", 50, "percent of requests drawn from the replayed pool (0-100)")
	seed := flag.Uint64("seed", 1, "base seed for the fuzzer program generator")
	engine := flag.String("engine", interp.EngineTree, "in-process server engine: tree, bytecode or regvm")
	workers := flag.Int("workers", 0, "in-process server workers (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "in-process server admission queue")
	batchN := flag.Int("batch", 8, "batch-leg per-request parallelism for /analyze/batch (0 skips the leg)")
	restart := flag.Bool("restart", true, "run the warm-restart leg (persistent store durability)")
	tenants := flag.Int("tenants", 2, "victim tenants in the fairness leg (0 skips the leg)")
	replicas := flag.Int("replicas", 0, "router leg: in-process pardetectd replicas behind a routing tier (0 skips the leg)")
	enginesLeg := flag.Bool("engines", true, "run the per-engine latency comparison leg (tree vs bytecode vs regvm)")
	out := flag.String("out", "-", "output path for the JSON result (\"-\" = stdout)")
	flag.Parse()
	if *c < 1 || *programs < 1 || *hitpct < 0 || *hitpct > 100 || *dur <= 0 {
		fmt.Fprintln(os.Stderr, "servebench: -c and -programs must be >= 1, -hitpct in [0,100], -dur > 0")
		os.Exit(2)
	}

	base := *addr
	var shutdown func()
	if base == "" {
		srv, err := server.New(server.Options{
			Workers:       *workers,
			Queue:         *queue,
			DefaultEngine: *engine,
		})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(ln)
		base = "http://" + ln.Addr().String()
		shutdown = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}
		fmt.Fprintf(os.Stderr, "servebench: in-process server on %s (engine %s, %d workers, queue %d)\n",
			base, *engine, srv.Workers(), *queue)
	}
	base = strings.TrimSuffix(base, "/")

	// The replayed pool: encoded once, POSTed repeatedly.
	pool := make([][]byte, *programs)
	for i := range pool {
		wire, err := server.EncodeProgram(fuzzer.Generate(*seed + uint64(i)))
		if err != nil {
			fatal(fmt.Errorf("encoding pool program %d: %w", i, err))
		}
		pool[i] = wire
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *c * 2,
		MaxIdleConnsPerHost: *c * 2,
	}}

	var (
		lat      = metrics.NewRegistry().Histogram("servebench_latency_ns", "client-observed /analyze latency")
		maxNS    atomic.Int64
		errs     atomic.Int64
		fresh    atomic.Uint64
		outcomes sync.Map // outcome string → *atomic.Int64
	)
	count := func(oc string) {
		v, _ := outcomes.LoadOrStore(oc, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	freshBase := *seed + uint64(*programs) // never overlaps the pool seeds

	start := time.Now()
	deadline := start.Add(*dur)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(*seed)*1315423911 + int64(w)))
			for time.Now().Before(deadline) {
				var body []byte
				if rng.Intn(100) < *hitpct {
					body = pool[rng.Intn(len(pool))]
				} else {
					wire, err := server.EncodeProgram(fuzzer.Generate(freshBase + fresh.Add(1)))
					if err != nil {
						errs.Add(1)
						continue
					}
					body = wire
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/analyze?format=json", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(t0).Nanoseconds()
				lat.Observe(d)
				for prev := maxNS.Load(); d > prev && !maxNS.CompareAndSwap(prev, d); prev = maxNS.Load() {
				}
				count(classify(resp))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var batchRes *batchResult
	if *batchN > 0 {
		batchRes = runBatchLeg(client, base, pool, *batchN)
	}
	srvSide := scrape(client, base)
	if shutdown != nil {
		shutdown()
	}
	var warmRes *warmRestartResult
	if *restart {
		warmRes = runWarmRestartLeg(pool, *engine, *workers, *queue)
	}
	var fairRes *fairnessResult
	if *tenants > 0 {
		fairRes = runFairnessLeg(pool[0], *tenants, *engine)
	}
	var routerRes *routerResult
	if *replicas > 0 {
		routerRes = runRouterLeg(pool, *engine, *workers, *queue, *replicas)
	}
	var enginesRes map[string]*engineLatency
	if *enginesLeg {
		enginesRes = runEnginesLeg(pool, *workers, *queue)
	}

	res := result{
		Schema: Schema,
		Config: config{
			Addr: *addr, Concurrency: *c, DurationNS: dur.Nanoseconds(),
			Programs: *programs, HitPct: *hitpct, Seed: *seed,
			Engine: *engine, Workers: *workers, Queue: *queue,
			Batch: *batchN, Restart: *restart, Tenants: *tenants,
			Replicas: *replicas, Engines: *enginesLeg,
		},
		Requests:  lat.Count(),
		Errors:    errs.Load(),
		ElapsedNS: elapsed.Nanoseconds(),
		LatencyNS: latency{
			P50: lat.Quantile(0.50), P90: lat.Quantile(0.90), P99: lat.Quantile(0.99),
			MeanNS: lat.Mean(), MaxNS: maxNS.Load(),
		},
		Outcomes:    map[string]int64{},
		Server:      srvSide,
		Batch:       batchRes,
		WarmRestart: warmRes,
		Fairness:    fairRes,
		Router:      routerRes,
		Engines:     enginesRes,
	}
	outcomes.Range(func(k, v any) bool {
		res.Outcomes[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	if res.Requests > 0 {
		res.ThroughputRPS = float64(res.Requests) / elapsed.Seconds()
		res.HitRate = float64(res.Outcomes["hit"]+res.Outcomes["join"]) / float64(res.Requests)
		res.RejectRate = float64(res.Outcomes["reject"]) / float64(res.Requests)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "servebench: %d requests in %v (%.1f rps, p50 %v, p99 %v, hit %.0f%%, reject %.0f%%)\n",
		res.Requests, elapsed.Round(time.Millisecond), res.ThroughputRPS,
		time.Duration(res.LatencyNS.P50), time.Duration(res.LatencyNS.P99),
		res.HitRate*100, res.RejectRate*100)
}

// classify maps a response to its outcome the same way the server's own
// middleware does: explicit outcome header, then cache verdict, then status.
func classify(resp *http.Response) string {
	if v := resp.Header.Get("X-Pardetect-Outcome"); v != "" {
		return v
	}
	if v := resp.Header.Get("X-Pardetect-Cache"); v != "" {
		return v
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return "reject"
	case resp.StatusCode == http.StatusGatewayTimeout:
		return "timeout"
	case resp.StatusCode >= 400:
		return "error"
	}
	return "ok"
}

// scrape pulls GET /metrics and summarises the server-side view: populated
// histogram bucket lines plus the cache counters.
func scrape(client *http.Client, base string) serverSide {
	var s serverSide
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: /metrics scrape failed: %v\n", err)
		return s
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		s.ScrapeBytes += len(line) + 1
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "_bucket{") && !strings.Contains(line, `le="+Inf"`) {
			s.HistogramBucketLines++
		}
		for _, c := range []struct {
			name string
			dst  *int64
		}{
			{"server.cache.hits", &s.CacheHits},
			{"server.cache.misses", &s.CacheMisses},
			{"server.dedup.joins", &s.CacheJoins},
		} {
			if strings.HasPrefix(line, `pardetect_obs_counter{name="`+c.name+`"}`) {
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", c.dst)
			}
		}
	}
	return s
}

// startLocal brings up an in-process server on a loopback port for the legs
// that need to own the server's lifecycle or configuration. The listener is
// returned so a leg can kill the replica (close it) instead of draining.
func startLocal(opts server.Options) (string, net.Listener, func(), error) {
	srv, err := server.New(opts)
	if err != nil {
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	go srv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), ln, stop, nil
}

// runBatchLeg POSTs the replayed pool to /analyze/batch twice — the first
// pass against whatever the load phase cached, the second pass fully warm —
// and tallies the per-line outcomes.
func runBatchLeg(client *http.Client, base string, pool [][]byte, parallel int) *batchResult {
	body := string(bytes.Join(pool, []byte("\n")))
	res := &batchResult{Outcomes: map[string]int64{}}
	t0 := time.Now()
	for req := 0; req < 2; req++ {
		resp, err := client.Post(fmt.Sprintf("%s/analyze/batch?parallel=%d", base, parallel),
			"application/x-ndjson", strings.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: batch leg: %v\n", err)
			return res
		}
		res.Requests++
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if len(strings.TrimSpace(sc.Text())) == 0 {
				continue
			}
			var line struct {
				Outcome string `json:"outcome"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				continue
			}
			res.Lines++
			res.Outcomes[line.Outcome]++
		}
		resp.Body.Close()
	}
	res.ElapsedNS = time.Since(t0).Nanoseconds()
	fmt.Fprintf(os.Stderr, "servebench: batch leg: %d requests, %d lines, outcomes %v\n",
		res.Requests, res.Lines, res.Outcomes)
	return res
}

// runWarmRestartLeg measures restart durability: server A analyses the pool
// into a persistent store and drains; server B opens the same directory and
// replays the pool. Every replayed request should be a hit with zero
// re-analysis — HitRate is the fraction that were.
func runWarmRestartLeg(pool [][]byte, engine string, workers, queue int) *warmRestartResult {
	res := &warmRestartResult{Programs: len(pool)}
	dir, err := os.MkdirTemp("", "servebench-store-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: warm-restart leg: %v\n", err)
		return res
	}
	defer os.RemoveAll(dir)
	client := &http.Client{}

	baseA, _, stopA, err := startLocal(server.Options{
		Workers: workers, Queue: queue, DefaultEngine: engine, StoreDir: dir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: warm-restart leg: %v\n", err)
		return res
	}
	for i, body := range pool {
		resp, err := client.Post(baseA+"/analyze", "application/json", strings.NewReader(string(body)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: warm-restart populate %d: %v\n", i, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	stopA() // drains and flushes the write-behind store queue

	baseB, _, stopB, err := startLocal(server.Options{
		Workers: workers, Queue: queue, DefaultEngine: engine, StoreDir: dir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: warm-restart leg: %v\n", err)
		return res
	}
	defer stopB()
	for i, body := range pool {
		resp, err := client.Post(baseB+"/analyze", "application/json", strings.NewReader(string(body)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: warm-restart replay %d: %v\n", i, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Pardetect-Cache") == "hit" {
			res.Hits++
		}
	}
	if res.Programs > 0 {
		res.HitRate = float64(res.Hits) / float64(res.Programs)
	}
	fmt.Fprintf(os.Stderr, "servebench: warm-restart leg: %d/%d hits after restart (%.1f%%)\n",
		res.Hits, res.Programs, res.HitRate*100)
	return res
}

// runEnginesLeg replays the pool once per interpreter engine, each against
// its own fresh in-process server. Fresh servers matter: the content-
// addressed cache is keyed by program content alone, so a shared server
// would answer every engine after the first from cache and the comparison
// would measure nothing. Each cell is therefore pure cold-cache analysis
// latency under that engine. scripts/servegate.go checks the section
// structurally (all three engines present and answering) without ranking
// them — the pool programs are small enough that HTTP overhead rivals
// execution time, so latency ordering here is noise; the authoritative
// engine comparison is BENCH_exec.json under scripts/benchgate.go.
func runEnginesLeg(pool [][]byte, workers, queue int) map[string]*engineLatency {
	res := map[string]*engineLatency{}
	client := &http.Client{}
	for _, eng := range []string{interp.EngineTree, interp.EngineBytecode, interp.EngineRegVM} {
		cell := &engineLatency{}
		res[eng] = cell
		base, _, stop, err := startLocal(server.Options{
			Workers: workers, Queue: queue, DefaultEngine: eng,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: engines leg (%s): %v\n", eng, err)
			continue
		}
		lat := metrics.NewRegistry().Histogram("servebench_engine_latency_ns", "engines-leg latency")
		var maxNS int64
		for i, body := range pool {
			t0 := time.Now()
			resp, err := client.Post(base+"/analyze?format=json", "application/json", strings.NewReader(string(body)))
			if err != nil {
				cell.Errors++
				fmt.Fprintf(os.Stderr, "servebench: engines leg (%s) program %d: %v\n", eng, i, err)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 400 {
				cell.Errors++
				continue
			}
			d := time.Since(t0).Nanoseconds()
			lat.Observe(d)
			if d > maxNS {
				maxNS = d
			}
		}
		stop()
		cell.Requests = lat.Count()
		cell.P50NS = lat.Quantile(0.50)
		cell.MeanNS = lat.Mean()
		cell.MaxNS = maxNS
		fmt.Fprintf(os.Stderr, "servebench: engines leg: %s p50 %v mean %v over %d programs\n",
			eng, time.Duration(cell.P50NS), time.Duration(cell.MeanNS), cell.Requests)
	}
	return res
}

// runFairnessLeg drives one hog tenant flooding unpaced and `victims` victim
// tenants each paced at half the per-tenant rate, against a server enforcing
// that rate. The hog exhausts its own bucket and is rejected; the victims
// never are — their buckets are their own.
func runFairnessLeg(body []byte, victims int, engine string) *fairnessResult {
	const rps = 5.0
	res := &fairnessResult{TenantRPS: rps, Victims: victims}
	base, _, stop, err := startLocal(server.Options{DefaultEngine: engine, TenantRPS: rps})
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: fairness leg: %v\n", err)
		return res
	}
	defer stop()
	client := &http.Client{}
	send := func(tenant string) (int, error) {
		req, err := http.NewRequest("POST", base+"/analyze", strings.NewReader(string(body)))
		if err != nil {
			return 0, err
		}
		req.Header.Set("X-Pardetect-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	// Seed the cache under a throwaway tenant so every measured request is a
	// cache hit: global admission never interferes, only the tenant limiter.
	send("seed")

	var hogReq, hogRej, vicReq, vicRej atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the hog: 50 requests back to back
		defer wg.Done()
		for i := 0; i < 50; i++ {
			st, err := send("hog")
			if err != nil {
				continue
			}
			hogReq.Add(1)
			if st == http.StatusTooManyRequests {
				hogRej.Add(1)
			}
		}
	}()
	for v := 0; v < victims; v++ {
		wg.Add(1)
		go func(v int) { // a victim: 5 requests paced at rps/2
			defer wg.Done()
			for i := 0; i < 5; i++ {
				st, err := send(fmt.Sprintf("victim-%d", v))
				if err != nil {
					continue
				}
				vicReq.Add(1)
				if st == http.StatusTooManyRequests {
					vicRej.Add(1)
				}
				time.Sleep(time.Duration(float64(time.Second) * 2 / rps))
			}
		}(v)
	}
	wg.Wait()
	res.HogRequests, res.HogRejects = hogReq.Load(), hogRej.Load()
	res.VictimRequests, res.VictimRejects = vicReq.Load(), vicRej.Load()
	if res.HogRequests > 0 {
		res.HogRejectRate = float64(res.HogRejects) / float64(res.HogRequests)
	}
	if res.VictimRequests > 0 {
		res.VictimRejectRate = float64(res.VictimRejects) / float64(res.VictimRequests)
	}
	fmt.Fprintf(os.Stderr, "servebench: fairness leg: hog %d/%d rejected, victims %d/%d rejected\n",
		res.HogRejects, res.HogRequests, res.VictimRejects, res.VictimRequests)
	return res
}

// runRouterLeg brings up `replicas` in-process pardetectd servers behind a
// routing tier (internal/router) and measures the two properties the tier
// exists for. Affinity: every pool program is requested twice through the
// router; the second request must be a cache hit served by the same home
// replica the first one landed on. Failover: the replica that is home to
// pool program 0 is killed (listener closed, server stopped) and the whole
// pool replayed; every request must still succeed, with the victim's
// programs remapped to other replicas.
func runRouterLeg(pool [][]byte, engine string, workers, queue, replicas int) *routerResult {
	res := &routerResult{Replicas: replicas, Programs: len(pool), BackendShare: map[string]int64{}}
	warn := func(err error) *routerResult {
		fmt.Fprintf(os.Stderr, "servebench: router leg: %v\n", err)
		return res
	}
	type replica struct {
		base string
		ln   net.Listener
		stop func()
	}
	var reps []replica
	var urls []string
	for i := 0; i < replicas; i++ {
		base, ln, stop, err := startLocal(server.Options{
			Workers: workers, Queue: queue, DefaultEngine: engine,
		})
		if err != nil {
			return warn(err)
		}
		defer stop()
		reps = append(reps, replica{base: base, ln: ln, stop: stop})
		urls = append(urls, base)
	}
	rt, err := router.New(router.Options{
		Backends:      urls,
		ProbeInterval: 100 * time.Millisecond,
		FailAfter:     1,
	})
	if err != nil {
		return warn(err)
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return warn(err)
	}
	rsrv := &http.Server{Handler: rt.Handler()}
	go rsrv.Serve(rln)
	defer rsrv.Close()
	base := "http://" + rln.Addr().String()

	// Stable labels for the JSON: replica-i in ring (sorted-URL) order, so
	// the ephemeral port numbers stay out of the published result.
	label := map[string]string{}
	for i, name := range rt.Ring().Backends() {
		label[name] = fmt.Sprintf("replica-%d", i)
	}

	client := &http.Client{}
	post := func(body []byte) (*http.Response, error) {
		resp, err := client.Post(base+"/analyze", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp, nil
	}

	// Pass 1: learn each program's home replica.
	home := make([]string, len(pool))
	for i, body := range pool {
		resp, err := post(body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return warn(fmt.Errorf("populate %d: err %v status %v", i, err, resp))
		}
		home[i] = resp.Header.Get(router.BackendHeader)
		res.BackendShare[label[home[i]]]++
	}
	// Pass 2: affinity — the replay must hit the same replica's cache.
	for i, body := range pool {
		resp, err := post(body)
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if resp.Header.Get(router.BackendHeader) == home[i] &&
			resp.Header.Get("X-Pardetect-Cache") == "hit" {
			res.HomeHits++
		}
	}
	res.HomeHitRate = float64(res.HomeHits) / float64(len(pool))

	// Failover: kill program 0's home replica, then replay everything. The
	// router must absorb the kill — strike, eject, next replica — with zero
	// client-visible errors.
	victim := home[0]
	for _, rep := range reps {
		if rep.base == victim {
			rep.ln.Close()
			rep.stop()
		}
	}
	for i, body := range pool {
		res.FailoverRequests++
		resp, err := post(body)
		if err != nil || resp.StatusCode != http.StatusOK {
			res.FailoverErrors++
			continue
		}
		if home[i] == victim && resp.Header.Get(router.BackendHeader) != victim {
			res.FailoverRemapped++
		}
	}
	fmt.Fprintf(os.Stderr, "servebench: router leg: %d replicas, affinity %d/%d (%.0f%%), failover %d remapped, %d errors\n",
		replicas, res.HomeHits, res.Programs, res.HomeHitRate*100, res.FailoverRemapped, res.FailoverErrors)
	return res
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
	os.Exit(1)
}
