// Command servebench load-tests pardetectd (internal/server) with the
// fuzzer's seeded program generator and publishes a BENCH_serve.json
// (schema pardetect.serve/v1) summarising serving behavior: throughput,
// client-observed latency quantiles, hit/reject rates and an outcome
// breakdown, plus a /metrics scrape of the server under test.
//
// Usage:
//
//	servebench [-addr http://host:port] [-c 4] [-dur 3s] [-programs 16]
//	           [-hitpct 50] [-seed 1] [-engine tree] [-workers 0]
//	           [-queue 64] [-out BENCH_serve.json]
//
// With no -addr (the default) an in-process server is started on a loopback
// port and drained afterwards, so the benchmark is self-contained; -addr
// points it at an already-running pardetectd instead (-engine/-workers/
// -queue then only shape the in-process default and are ignored).
//
// Traffic model: -programs seeds are generated up front and replayed so the
// content-addressed cache can serve them (after each program's first visit,
// a hit or a singleflight join); with probability 1-hitpct/100 a request
// instead POSTs a never-repeated fresh seed, forcing a miss. Outcomes are
// read back from the response (X-Pardetect-Outcome, X-Pardetect-Cache,
// status), the same classification the server's own /metrics uses.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pardetect/internal/fuzzer"
	"pardetect/internal/interp"
	"pardetect/internal/obs/metrics"
	"pardetect/internal/server"
)

// Schema identifies the BENCH_serve.json layout.
const Schema = "pardetect.serve/v1"

type config struct {
	Addr        string `json:"addr,omitempty"`
	Concurrency int    `json:"concurrency"`
	DurationNS  int64  `json:"duration_ns"`
	Programs    int    `json:"programs"`
	HitPct      int    `json:"hit_pct"`
	Seed        uint64 `json:"seed"`
	Engine      string `json:"engine,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	Queue       int    `json:"queue"`
}

type latency struct {
	P50    int64 `json:"p50"`
	P90    int64 `json:"p90"`
	P99    int64 `json:"p99"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

type serverSide struct {
	// HistogramBucketLines counts populated _bucket lines in the /metrics
	// scrape — the gate's "histograms actually recorded something" check.
	HistogramBucketLines int   `json:"histogram_bucket_lines"`
	ScrapeBytes          int   `json:"scrape_bytes"`
	CacheHits            int64 `json:"cache_hits"`
	CacheMisses          int64 `json:"cache_misses"`
	CacheJoins           int64 `json:"cache_joins"`
}

type result struct {
	Schema        string           `json:"schema"`
	Config        config           `json:"config"`
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	ElapsedNS     int64            `json:"elapsed_ns"`
	ThroughputRPS float64          `json:"throughput_rps"`
	LatencyNS     latency          `json:"latency_ns"`
	HitRate       float64          `json:"hit_rate"`
	RejectRate    float64          `json:"reject_rate"`
	Outcomes      map[string]int64 `json:"outcomes"`
	Server        serverSide       `json:"server"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running pardetectd (empty: start one in-process)")
	c := flag.Int("c", 4, "concurrent client connections")
	dur := flag.Duration("dur", 3*time.Second, "load duration")
	programs := flag.Int("programs", 16, "replayed program pool size (cacheable traffic)")
	hitpct := flag.Int("hitpct", 50, "percent of requests drawn from the replayed pool (0-100)")
	seed := flag.Uint64("seed", 1, "base seed for the fuzzer program generator")
	engine := flag.String("engine", interp.EngineTree, "in-process server engine: tree or bytecode")
	workers := flag.Int("workers", 0, "in-process server workers (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "in-process server admission queue")
	out := flag.String("out", "-", "output path for the JSON result (\"-\" = stdout)")
	flag.Parse()
	if *c < 1 || *programs < 1 || *hitpct < 0 || *hitpct > 100 || *dur <= 0 {
		fmt.Fprintln(os.Stderr, "servebench: -c and -programs must be >= 1, -hitpct in [0,100], -dur > 0")
		os.Exit(2)
	}

	base := *addr
	var shutdown func()
	if base == "" {
		srv, err := server.New(server.Options{
			Workers:       *workers,
			Queue:         *queue,
			DefaultEngine: *engine,
		})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(ln)
		base = "http://" + ln.Addr().String()
		shutdown = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}
		fmt.Fprintf(os.Stderr, "servebench: in-process server on %s (engine %s, %d workers, queue %d)\n",
			base, *engine, srv.Workers(), *queue)
	}
	base = strings.TrimSuffix(base, "/")

	// The replayed pool: encoded once, POSTed repeatedly.
	pool := make([][]byte, *programs)
	for i := range pool {
		wire, err := server.EncodeProgram(fuzzer.Generate(*seed + uint64(i)))
		if err != nil {
			fatal(fmt.Errorf("encoding pool program %d: %w", i, err))
		}
		pool[i] = wire
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *c * 2,
		MaxIdleConnsPerHost: *c * 2,
	}}

	var (
		lat      = metrics.NewRegistry().Histogram("servebench_latency_ns", "client-observed /analyze latency")
		maxNS    atomic.Int64
		errs     atomic.Int64
		fresh    atomic.Uint64
		outcomes sync.Map // outcome string → *atomic.Int64
	)
	count := func(oc string) {
		v, _ := outcomes.LoadOrStore(oc, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	freshBase := *seed + uint64(*programs) // never overlaps the pool seeds

	start := time.Now()
	deadline := start.Add(*dur)
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(*seed)*1315423911 + int64(w)))
			for time.Now().Before(deadline) {
				var body []byte
				if rng.Intn(100) < *hitpct {
					body = pool[rng.Intn(len(pool))]
				} else {
					wire, err := server.EncodeProgram(fuzzer.Generate(freshBase + fresh.Add(1)))
					if err != nil {
						errs.Add(1)
						continue
					}
					body = wire
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/analyze?format=json", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(t0).Nanoseconds()
				lat.Observe(d)
				for prev := maxNS.Load(); d > prev && !maxNS.CompareAndSwap(prev, d); prev = maxNS.Load() {
				}
				count(classify(resp))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	srvSide := scrape(client, base)
	if shutdown != nil {
		shutdown()
	}

	res := result{
		Schema: Schema,
		Config: config{
			Addr: *addr, Concurrency: *c, DurationNS: dur.Nanoseconds(),
			Programs: *programs, HitPct: *hitpct, Seed: *seed,
			Engine: *engine, Workers: *workers, Queue: *queue,
		},
		Requests:  lat.Count(),
		Errors:    errs.Load(),
		ElapsedNS: elapsed.Nanoseconds(),
		LatencyNS: latency{
			P50: lat.Quantile(0.50), P90: lat.Quantile(0.90), P99: lat.Quantile(0.99),
			MeanNS: lat.Mean(), MaxNS: maxNS.Load(),
		},
		Outcomes: map[string]int64{},
		Server:   srvSide,
	}
	outcomes.Range(func(k, v any) bool {
		res.Outcomes[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	if res.Requests > 0 {
		res.ThroughputRPS = float64(res.Requests) / elapsed.Seconds()
		res.HitRate = float64(res.Outcomes["hit"]+res.Outcomes["join"]) / float64(res.Requests)
		res.RejectRate = float64(res.Outcomes["reject"]) / float64(res.Requests)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "servebench: %d requests in %v (%.1f rps, p50 %v, p99 %v, hit %.0f%%, reject %.0f%%)\n",
		res.Requests, elapsed.Round(time.Millisecond), res.ThroughputRPS,
		time.Duration(res.LatencyNS.P50), time.Duration(res.LatencyNS.P99),
		res.HitRate*100, res.RejectRate*100)
}

// classify maps a response to its outcome the same way the server's own
// middleware does: explicit outcome header, then cache verdict, then status.
func classify(resp *http.Response) string {
	if v := resp.Header.Get("X-Pardetect-Outcome"); v != "" {
		return v
	}
	if v := resp.Header.Get("X-Pardetect-Cache"); v != "" {
		return v
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return "reject"
	case resp.StatusCode == http.StatusGatewayTimeout:
		return "timeout"
	case resp.StatusCode >= 400:
		return "error"
	}
	return "ok"
}

// scrape pulls GET /metrics and summarises the server-side view: populated
// histogram bucket lines plus the cache counters.
func scrape(client *http.Client, base string) serverSide {
	var s serverSide
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: /metrics scrape failed: %v\n", err)
		return s
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		s.ScrapeBytes += len(line) + 1
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "_bucket{") && !strings.Contains(line, `le="+Inf"`) {
			s.HistogramBucketLines++
		}
		for _, c := range []struct {
			name string
			dst  *int64
		}{
			{"server.cache.hits", &s.CacheHits},
			{"server.cache.misses", &s.CacheMisses},
			{"server.dedup.joins", &s.CacheJoins},
		} {
			if strings.HasPrefix(line, `pardetect_obs_counter{name="`+c.name+`"}`) {
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", c.dst)
			}
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
	os.Exit(1)
}
