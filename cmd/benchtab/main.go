// Command benchtab regenerates the paper's evaluation tables (I–VI), printing
// paper-reported values next to this reproduction's measured values, plus the
// simulated speedup curves behind Table III's speedup column.
//
// Usage:
//
//	benchtab                      # all tables
//	benchtab -table 3             # one table
//	benchtab -jobs 8              # farm the app analyses over 8 workers
//	benchtab -engine bytecode     # run the analyses on the compiled engine
//	benchtab -curves              # speedup-vs-threads series per benchmark
//	benchtab -stats-out obs.json  # also write per-app telemetry (JSON)
//
// The per-app analyses behind Tables III–V run on the internal/farm worker
// pool; -jobs sets the pool size (default GOMAXPROCS, 1 = sequential). Farm
// results keep input order, so the tables are byte-identical at any -jobs.
// -engine switches the interpreter to the compiled bytecode engine; the
// engines produce identical profiles, so every table stays byte-identical
// (scripts/goldens.sh checks both).
//
// -stats-out runs every Table III app with pipeline telemetry enabled and
// writes one pardetect.obs/v1 report per app — headed by the farm's own
// batch report — wrapped in a pardetect.obs.runset/v1 envelope: the
// machine-readable record of phase timings, event/dependence counters and
// candidate decisions. -debug-addr serves /debug/pprof and /debug/vars
// while the tables are being computed.
package main

import (
	"flag"
	"fmt"
	"os"

	"pardetect/internal/apps"
	"pardetect/internal/farm"
	"pardetect/internal/interp"
	"pardetect/internal/obs"
	"pardetect/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1..6); 0 prints all")
	jobs := flag.Int("jobs", 0, "concurrent app analyses (default GOMAXPROCS; 1 = sequential)")
	engine := flag.String("engine", interp.EngineTree, "interpreter engine for the profiled runs: tree, bytecode or regvm")
	curves := flag.Bool("curves", false, "print the simulated speedup curves")
	statsOut := flag.String("stats-out", "", "write per-app telemetry reports as JSON to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address while running")
	flag.Parse()

	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	*engine = eng

	if *debugAddr != "" {
		addr, stop, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: debug server: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "benchtab: debug endpoint at http://%s/debug/\n", addr)
	}

	needRuns := *curves || *statsOut != "" || *table == 0 || (*table >= 3 && *table <= 5)
	var runs []*report.AppRun
	if needRuns {
		batch := farm.RunApps(apps.TableIIIOrder, farm.Options{Jobs: *jobs, Observe: *statsOut != "", Engine: *engine})
		var err error
		runs, err = batch.Runs()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if *statsOut != "" {
			set := batch.RunSet()
			data, err := set.JSON()
			if err == nil {
				err = os.WriteFile(*statsOut, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: stats-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchtab: wrote %d telemetry reports to %s\n", len(set.Runs), *statsOut)
		}
	}

	show := func(n int) bool { return *table == 0 || *table == n }
	if show(1) {
		fmt.Println(report.TableI())
	}
	if show(2) {
		fmt.Println(report.TableII())
	}
	if show(3) {
		fmt.Println(report.TableIII(runs))
	}
	if show(4) {
		fmt.Println(report.TableIV(runs))
	}
	if show(5) {
		fmt.Println(report.TableV(runs))
	}
	if show(6) {
		t6, err := report.TableVI()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t6)
	}
	if *curves {
		for _, r := range runs {
			if r.Sweep == nil {
				continue
			}
			fmt.Println(report.SpeedupCurve(r))
		}
	}
}
