// Command benchtab regenerates the paper's evaluation tables (I–VI), printing
// paper-reported values next to this reproduction's measured values, plus the
// simulated speedup curves behind Table III's speedup column.
//
// Usage:
//
//	benchtab              # all tables
//	benchtab -table 3     # one table
//	benchtab -curves      # speedup-vs-threads series per benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"pardetect/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1..6); 0 prints all")
	curves := flag.Bool("curves", false, "print the simulated speedup curves")
	flag.Parse()

	needRuns := *curves || *table == 0 || (*table >= 3 && *table <= 5)
	var runs []*report.AppRun
	if needRuns {
		var err error
		runs, err = report.RunAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}

	show := func(n int) bool { return *table == 0 || *table == n }
	if show(1) {
		fmt.Println(report.TableI())
	}
	if show(2) {
		fmt.Println(report.TableII())
	}
	if show(3) {
		fmt.Println(report.TableIII(runs))
	}
	if show(4) {
		fmt.Println(report.TableIV(runs))
	}
	if show(5) {
		fmt.Println(report.TableV(runs))
	}
	if show(6) {
		t6, err := report.TableVI()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t6)
	}
	if *curves {
		for _, r := range runs {
			if r.Sweep == nil {
				continue
			}
			fmt.Println(report.SpeedupCurve(r))
		}
	}
}
