// Command parcorpus is the corpus-mode front end: it runs the
// internal/corpus driver over a directory of wire-IR JSON programs — the
// same documents pardetectd's POST /analyze accepts — analysing every
// program and, on later runs, re-analysing only what changed.
//
// Usage:
//
//	parcorpus -dir corpus/ [-jobs 8] [-store-dir cache/] [-engine regvm]
//	          [-manifest path] [-out report.txt] [-json] [-stats] [-timeout 5s]
//	parcorpus -dir corpus/ -gen 1000 [-seed 1]
//	parcorpus -bench 1000 [-jobs 8] [-engine regvm] [-bench-out BENCH_corpus.json]
//
// The default mode is a corpus run. Incrementality is two tiers deep: a
// manifest next to the corpus skips files whose program fingerprint is
// unchanged, and the persistent result store (-store-dir — the same
// content-addressed tier pardetectd serves from) turns changed-but-seen
// programs into cache hits. The report (text by default, -json for the
// pardetect.corpus.report/v1 document) is byte-identical at any -jobs value
// and under any -engine.
//
// -gen N generates a deterministic fuzzer-seeded corpus of N programs into
// -dir and exits; rerunning with the same -seed reproduces the same corpus.
//
// -bench N measures the three canonical corpus passes over a fresh
// N-program corpus in a temporary directory — cold (empty manifest and
// store), warm (nothing changed) and dirty (1% of programs touched) — and
// writes a pardetect.corpus.bench/v1 document to -bench-out (stdout if
// empty). scripts/corpusgate.go gates this document structurally in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pardetect/internal/corpus"
	"pardetect/internal/interp"
	"pardetect/internal/obs"
)

func main() {
	dir := flag.String("dir", "", "corpus directory of wire-IR *.json programs")
	jobs := flag.Int("jobs", 0, "analysis worker-pool size (default GOMAXPROCS; 1 = sequential)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty disables the store tier)")
	storeMax := flag.Int("store-max", 0, "store entry cap (default: sized to the corpus)")
	engine := flag.String("engine", interp.EngineTree, "interpreter engine: tree, bytecode or regvm")
	manifest := flag.String("manifest", "", "manifest path (default <dir>/"+corpus.DefaultManifestName+")")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	asJSON := flag.Bool("json", false, "emit the report as JSON (schema "+corpus.ReportSchema+")")
	stats := flag.Bool("stats", false, "append the telemetry report (phase spans, counters) to stderr")
	timeout := flag.Duration("timeout", 0, "per-program analysis budget (0 = none)")
	gen := flag.Int("gen", 0, "generate this many fuzzer-seeded programs into -dir and exit")
	seed := flag.Uint64("seed", 1, "base seed for -gen (deterministic: same seed, same corpus)")
	bench := flag.Int("bench", 0, "benchmark cold/warm/dirty passes over a fresh corpus of this many programs")
	benchOut := flag.String("bench-out", "", "write the bench document to this file (default stdout)")
	flag.Parse()

	// Flag validation happens up front, before any filesystem work: bad
	// numeric flags are usage errors (exit 2), matching how the flag package
	// itself treats unparseable values.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "parcorpus: "+format+"\n", args...)
		os.Exit(2)
	}
	if *jobs < 0 {
		fail("bad -jobs %d: must be >= 1 (or 0 for GOMAXPROCS)", *jobs)
	}
	if *storeMax < 0 {
		fail("bad -store-max %d: must be >= 0", *storeMax)
	}
	if *timeout < 0 {
		fail("bad -timeout %s: must be >= 0", *timeout)
	}
	if _, err := interp.ParseEngine(*engine); err != nil {
		fail("%v", err)
	}
	if flag.NArg() > 0 {
		fail("unexpected argument %q", flag.Arg(0))
	}

	switch {
	case *gen != 0:
		if *gen < 0 {
			fail("bad -gen %d: must be >= 1", *gen)
		}
		if *bench != 0 {
			fail("-gen and -bench are mutually exclusive")
		}
		if *dir == "" {
			fail("-gen needs -dir")
		}
		if err := corpus.GenerateFiles(*dir, *gen, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "parcorpus: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("generated %d programs in %s (base seed %d)\n", *gen, *dir, *seed)

	case *bench != 0:
		if *bench < 0 {
			fail("bad -bench %d: must be >= 1", *bench)
		}
		if err := runBench(*bench, *jobs, *engine, *timeout, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "parcorpus: bench: %v\n", err)
			os.Exit(1)
		}

	default:
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "usage: parcorpus -dir corpus/ [flags]   (or -gen N, -bench N; see -h)")
			os.Exit(2)
		}
		os.Exit(runCorpus(corpus.Options{
			Dir:      *dir,
			Manifest: *manifest,
			StoreDir: *storeDir,
			StoreMax: *storeMax,
			Jobs:     *jobs,
			Engine:   *engine,
			Timeout:  *timeout,
		}, *out, *asJSON, *stats))
	}
}

// runCorpus executes one corpus pass and renders the report.
func runCorpus(opts corpus.Options, out string, asJSON, stats bool) int {
	var o *obs.Observer
	if stats {
		o = obs.New("parcorpus")
		opts.Observer = o
	}
	rep, err := corpus.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcorpus: %v\n", err)
		return 1
	}
	var body []byte
	if asJSON {
		body, err = rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "parcorpus: render report: %v\n", err)
			return 1
		}
		body = append(body, '\n')
	} else {
		body = []byte(rep.Text())
	}
	if out != "" {
		if err := os.WriteFile(out, body, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "parcorpus: %v\n", err)
			return 1
		}
	} else {
		os.Stdout.Write(body)
	}
	if stats {
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, o.Snapshot().Text())
	}
	// Failed programs make the run exit 1 so CI and scripts notice, but only
	// after the full report is out: failures are per program, not per corpus.
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "parcorpus: %d of %d programs failed\n", rep.Failed, rep.Programs)
		return 1
	}
	return 0
}

// benchPass is one measured corpus pass in the bench document.
type benchPass struct {
	WallNS   int64 `json:"wall_ns"`
	Analyzed int   `json:"analyzed"`
	Cached   int   `json:"cached"`
	Skipped  int   `json:"skipped"`
	Failed   int   `json:"failed"`
}

// benchDoc is the pardetect.corpus.bench/v1 document corpusgate consumes.
type benchDoc struct {
	Schema        string    `json:"schema"`
	Programs      int       `json:"programs"`
	Jobs          int       `json:"jobs"`
	Engine        string    `json:"engine"`
	DirtyPrograms int       `json:"dirty_programs"`
	Cold          benchPass `json:"cold"`
	Warm          benchPass `json:"warm"`
	Dirty         benchPass `json:"dirty"`
}

// runBench generates a fresh n-program corpus in a temp dir and measures the
// cold, warm and one-percent-dirty passes.
func runBench(n, jobs int, engine string, timeout time.Duration, outPath string) error {
	root, err := os.MkdirTemp("", "parcorpus-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	dir := filepath.Join(root, "corpus")
	if err := corpus.GenerateFiles(dir, n, 1); err != nil {
		return err
	}
	opts := corpus.Options{
		Dir:      dir,
		StoreDir: filepath.Join(root, "store"),
		Jobs:     jobs,
		Engine:   engine,
		Timeout:  timeout,
	}
	pass := func() (benchPass, error) {
		start := time.Now()
		rep, err := corpus.Run(opts)
		wall := time.Since(start)
		if err != nil {
			return benchPass{}, err
		}
		return benchPass{
			WallNS:   wall.Nanoseconds(),
			Analyzed: rep.Analyzed,
			Cached:   rep.Cached,
			Skipped:  rep.Skipped,
			Failed:   rep.Failed,
		}, nil
	}

	doc := benchDoc{Schema: "pardetect.corpus.bench/v1", Programs: n, Jobs: jobs, Engine: engine}
	if doc.Cold, err = pass(); err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	if doc.Warm, err = pass(); err != nil {
		return fmt.Errorf("warm pass: %w", err)
	}

	// Dirty pass: rewrite 1% of the corpus (at least one program) with fresh
	// seeds, modelling the steady-state "a few programs changed" rerun.
	doc.DirtyPrograms = n / 100
	if doc.DirtyPrograms < 1 {
		doc.DirtyPrograms = 1
	}
	for i := 0; i < doc.DirtyPrograms; i++ {
		if err := corpus.GenerateFile(dir, i, uint64(n+i)+1_000_003); err != nil {
			return err
		}
	}
	if doc.Dirty, err = pass(); err != nil {
		return fmt.Errorf("dirty pass: %w", err)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(outPath, data, 0o644)
}
