// Command pardetectd serves the pattern-detection pipeline as a long-running
// HTTP service (internal/server): the same core.Analyze → report pipeline
// the pardetect CLI runs, behind a content-addressed result cache,
// singleflight deduplication, bounded admission with backpressure and
// graceful shutdown.
//
// Usage:
//
//	pardetectd [-addr localhost:7070] [-workers 8] [-queue 64] [-cache 512]
//	           [-timeout 2m] [-engine bytecode] [-access-log PATH] [-slow 8]
//	           [-store-dir DIR] [-store-max 4096] [-tenant-rps 0] [-tenant-inflight 0]
//
// Endpoints:
//
//	GET  /healthz                      liveness + pool/cache gauges
//	GET  /apps                         registered benchmarks (JSON)
//	GET  /ir?app=NAME                  a benchmark's program as wire IR
//	GET  /analyze?app=NAME             analyse a registered benchmark
//	POST /analyze                      analyse a POSTed wire-IR program
//	POST /analyze/batch                analyse many programs (NDJSON in/out,
//	                                   parallel=N, per-line failure)
//	GET  /metrics                      Prometheus text exposition (latency
//	                                   histograms by endpoint × outcome)
//	GET  /debug/metrics                the same registry as JSON with p50/p99
//	GET  /debug/slow                   the K slowest requests with their full
//	                                   span tree and decision log
//	GET  /debug/{obs,vars,pprof/...}   telemetry surface
//
// /analyze accepts engine=tree|bytecode, timeout=DURATION, format=text|json
// and cache=use|skip. The text body is byte-identical to the pardetect CLI
// output for the same program. The bound address is printed to stderr
// (useful with ":0"); SIGINT/SIGTERM drain in-flight analyses before exit.
//
// -store-dir enables the persistent result store: completed analyses are
// written behind to DIR and survive restarts — a relaunched daemon pointed at
// the same directory serves them as cache hits without re-analysing. Shutdown
// flushes the write queue, so a drained SIGTERM loses nothing.
//
// -tenant-rps and -tenant-inflight enforce per-tenant fairness keyed on the
// X-Pardetect-Tenant header (unlabelled requests share one bucket): a tenant
// over its request rate or in-flight quota is answered 429 + Retry-After
// before global admission, so one hog cannot starve other tenants.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pardetect/internal/interp"
	"pardetect/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "listen address (\":0\" picks a free port; the bound address is printed to stderr)")
	workers := flag.Int("workers", 0, "concurrent analyses (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the workers; a full queue answers 429")
	cacheEntries := flag.Int("cache", 512, "content-addressed result cache entries (LRU)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-request analysis deadline (0 = none; requests may lower it)")
	engine := flag.String("engine", interp.EngineTree, "default interpreter engine: tree, bytecode or regvm")
	drain := flag.Duration("drain", time.Minute, "shutdown grace period for in-flight analyses")
	accessLog := flag.String("access-log", "", "write one JSON access-log line per request to this file (\"-\" = stderr)")
	slow := flag.Int("slow", 8, "slow-request samples kept for /debug/slow (0 disables)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty disables; survives restarts)")
	storeMax := flag.Int("store-max", 0, "persistent store entry budget, oldest evicted beyond it (0 = default 4096)")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant sustained requests/second (token bucket; 0 disables)")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant max concurrent requests (0 disables)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pardetectd [flags]   (pardetectd takes no arguments)")
		os.Exit(2)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetectd: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	var logw io.Writer
	switch *accessLog {
	case "":
	case "-":
		logw = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pardetectd: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		logw = f
	}
	slowK := *slow
	if slowK <= 0 {
		slowK = -1 // Options.SlowSamples: negative disables, zero means default
	}

	srv, err := server.New(server.Options{
		Workers:           *workers,
		Queue:             *queue,
		CacheEntries:      *cacheEntries,
		DefaultTimeout:    *timeout,
		DefaultEngine:     eng,
		AccessLog:         logw,
		SlowSamples:       slowK,
		StoreDir:          *storeDir,
		StoreMaxEntries:   *storeMax,
		TenantRPS:         *tenantRPS,
		TenantMaxInflight: *tenantInflight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetectd: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetectd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pardetectd: listening on http://%s/ (engine %s, %d workers, queue %d)\n",
		ln.Addr(), eng, srv.Workers(), *queue)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pardetectd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pardetectd: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "pardetectd: drained, exiting")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pardetectd: serve: %v\n", err)
		os.Exit(1)
	}
}
