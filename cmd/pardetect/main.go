// Command pardetect runs the full pattern-detection pipeline on one of the
// built-in benchmark programs and prints the detection report: loop classes,
// reduction candidates (Algorithm 3), multi-loop pipeline fits (§III-A),
// fork/worker/barrier classifications (Algorithm 1) and geometric
// decomposition candidates (Algorithm 2).
//
// Usage:
//
//	pardetect [-hotspot 0.02] [-engine bytecode] [-ops] [-deps] [-stats] <benchmark>
//	pardetect -all [-jobs 8] [-engine bytecode] [-stats] [-stats-json stats.json]
//	pardetect -stats-json stats.json <benchmark>
//	pardetect -debug-addr localhost:6060 <benchmark>
//	pardetect -fuzz-seed 0x83b
//	pardetect -list
//
// -fuzz-seed replays one internal/fuzzer seed: it prints the generated
// program and runs the differential and metamorphic oracle suites on it,
// exiting 1 if any oracle disagrees. This reproduces campaign and go-fuzz
// failures from the seed alone.
//
// -all analyses every registered benchmark through the internal/farm worker
// pool (-jobs workers, default GOMAXPROCS) and prints the reports in
// registry order; a failing app is reported and the rest of the batch still
// completes. With -all, -stats prints the farm's batch telemetry and
// -stats-json writes the whole batch as a pardetect.obs.runset/v1 envelope.
//
// -engine selects the interpreter execution engine for the profiled runs:
// "tree" (the reference tree walker, default) or "bytecode" (the compiled
// engine — identical analysis results, substantially faster; see DESIGN.md).
//
// -stats appends the telemetry report: the per-phase span tree (wall time
// and allocated bytes), the counter table, the hottest sampled lines and
// the candidate decision log. -stats-json writes the same data as JSON
// (schema pardetect.obs/v1). -debug-addr serves /debug/pprof, /debug/vars
// and /debug/obs on the given address and keeps the process alive after
// printing, for interactive inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pardetect/internal/apps"
	"pardetect/internal/core"
	"pardetect/internal/farm"
	"pardetect/internal/fuzzer"
	"pardetect/internal/interp"
	"pardetect/internal/obs"
	"pardetect/internal/report"
)

func main() {
	list := flag.Bool("list", false, "list the available benchmarks and exit")
	all := flag.Bool("all", false, "analyse every registered benchmark through the farm worker pool")
	jobs := flag.Int("jobs", 0, "concurrent analyses with -all (default GOMAXPROCS; 1 = sequential)")
	hotspot := flag.Float64("hotspot", 0, "hotspot share threshold (default 0.02)")
	engine := flag.String("engine", interp.EngineTree, "interpreter engine for the profiled runs: tree, bytecode or regvm")
	showOps := flag.Bool("ops", false, "print the Program Execution Tree with operation counts")
	showDeps := flag.Bool("deps", false, "print the profiled cross-loop dependences")
	showSrc := flag.Bool("src", false, "print the benchmark's mini-IR source")
	stats := flag.Bool("stats", false, "print the telemetry report (phase spans, counters, decision log)")
	statsJSON := flag.String("stats-json", "", "write the telemetry report as JSON to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address and wait")
	fuzzSeed := flag.Uint64("fuzz-seed", 0, "replay one fuzzer seed: print the generated program, run every oracle, exit 1 on divergence")
	fuzzSeedSet := false
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fuzz-seed" {
			fuzzSeedSet = true
		}
	})

	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetect: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	*engine = eng

	if fuzzSeedSet {
		os.Exit(replaySeed(*fuzzSeed))
	}
	if *list {
		for _, a := range apps.All() {
			fmt.Printf("%-14s %-10s %s\n", a.Name, a.Suite, a.Expect.Pattern)
		}
		return
	}
	if *all {
		if flag.NArg() != 0 || *hotspot != 0 || *showOps || *showDeps || *showSrc || *debugAddr != "" {
			fmt.Fprintln(os.Stderr, "pardetect: -all runs the default configuration; it cannot be combined with a benchmark argument, -hotspot, -ops, -deps, -src or -debug-addr")
			os.Exit(2)
		}
		os.Exit(runAll(*jobs, *stats, *statsJSON, *engine))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pardetect [flags] <benchmark>   (or -list, -all)")
		os.Exit(2)
	}
	name := flag.Arg(0)
	app := apps.Get(name)
	if app == nil {
		fmt.Fprintf(os.Stderr, "pardetect: unknown benchmark %q (try -list)\n", name)
		os.Exit(2)
	}

	var o *obs.Observer
	if *stats || *statsJSON != "" || *debugAddr != "" {
		o = obs.New(name)
	}
	if *debugAddr != "" {
		addr, _, err := obs.ServeDebug(*debugAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pardetect: debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pardetect: debug endpoint at http://%s/debug/\n", addr)
	}

	prog := app.Build()
	if *showSrc {
		fmt.Println(prog)
	}
	res, err := core.Analyze(prog, core.Options{
		HotspotShare:           *hotspot,
		InferReductionOperator: true,
		Observer:               o,
		Engine:                 *engine,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetect: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	if *showOps {
		fmt.Println()
		fmt.Print(res.Tree.String())
	}
	if *showDeps {
		fmt.Println("\ncross-loop dependences:")
		fmt.Print(report.CrossLoopPairs(res.Profile))
	}
	if *stats {
		fmt.Println()
		fmt.Print(o.Snapshot().Text())
	}
	if *statsJSON != "" {
		data, err := o.Snapshot().JSON()
		if err == nil {
			err = os.WriteFile(*statsJSON, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pardetect: stats-json: %v\n", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		fmt.Fprintln(os.Stderr, "pardetect: analysis done; debug endpoint stays up (Ctrl-C to exit)")
		select {}
	}
}

// replaySeed regenerates the program of one fuzzer seed, prints it, runs the
// full differential + metamorphic oracle suite on it, and reports the
// outcome. This is the reproduction entry point for a campaign or go-fuzz
// failure: the seed alone rebuilds the exact program and disagreement.
func replaySeed(seed uint64) int {
	p := fuzzer.Generate(seed)
	fmt.Printf("seed %#016x  shape %+v\n\n%s\n", seed, fuzzer.ShapeForSeed(seed), p)
	res := fuzzer.CheckSeed(seed)
	for _, s := range res.Skips {
		fmt.Printf("skip  %s\n", s)
	}
	if len(res.Divergences) == 0 {
		fmt.Println("ok    all oracles agree")
		return 0
	}
	for _, d := range res.Divergences {
		fmt.Printf("FAIL  %s\n", d)
	}
	return 1
}

// runAll farms every registered benchmark and prints the detection reports
// in registry order. It returns the process exit code: 0 when every app
// analysed cleanly, 1 when any failed (the failures are reported inline and
// the rest of the batch still completes).
func runAll(jobs int, stats bool, statsJSON string, engine string) int {
	names := make([]string, 0, len(apps.All()))
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	observe := stats || statsJSON != ""
	batch := farm.RunApps(names, farm.Options{Jobs: jobs, Observe: observe, Engine: engine})

	code := 0
	for i, r := range batch.Results {
		if i > 0 {
			fmt.Println()
		}
		if r.Err != nil {
			code = 1
			fmt.Fprintf(os.Stderr, "pardetect: %s: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Print(r.Run.Result.Summary())
	}
	rep := batch.Report()
	fmt.Fprintf(os.Stderr, "pardetect: farmed %d apps on %d workers in %s (%d failed)\n",
		rep.Counters["farm.tasks"], rep.Counters["farm.jobs"], batch.Wall.Round(time.Millisecond), rep.Counters["farm.errors"])
	if stats {
		fmt.Println()
		for _, run := range batch.RunSet().Runs {
			fmt.Print(run.Text())
		}
	}
	if statsJSON != "" {
		data, err := batch.RunSet().JSON()
		if err == nil {
			err = os.WriteFile(statsJSON, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pardetect: stats-json: %v\n", err)
			return 1
		}
	}
	return code
}
