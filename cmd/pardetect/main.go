// Command pardetect runs the full pattern-detection pipeline on one of the
// built-in benchmark programs and prints the detection report: loop classes,
// reduction candidates (Algorithm 3), multi-loop pipeline fits (§III-A),
// fork/worker/barrier classifications (Algorithm 1) and geometric
// decomposition candidates (Algorithm 2).
//
// Usage:
//
//	pardetect [-hotspot 0.02] [-ops] [-deps] <benchmark>
//	pardetect -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pardetect/internal/apps"
	"pardetect/internal/core"
	"pardetect/internal/report"
)

func main() {
	list := flag.Bool("list", false, "list the available benchmarks and exit")
	hotspot := flag.Float64("hotspot", 0, "hotspot share threshold (default 0.02)")
	showOps := flag.Bool("ops", false, "print the Program Execution Tree with operation counts")
	showDeps := flag.Bool("deps", false, "print the profiled cross-loop dependences")
	showSrc := flag.Bool("src", false, "print the benchmark's mini-IR source")
	flag.Parse()

	if *list {
		for _, a := range apps.All() {
			fmt.Printf("%-14s %-10s %s\n", a.Name, a.Suite, a.Expect.Pattern)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pardetect [flags] <benchmark>   (or -list)")
		os.Exit(2)
	}
	name := flag.Arg(0)
	app := apps.Get(name)
	if app == nil {
		fmt.Fprintf(os.Stderr, "pardetect: unknown benchmark %q (try -list)\n", name)
		os.Exit(2)
	}
	prog := app.Build()
	if *showSrc {
		fmt.Println(prog)
	}
	res, err := core.Analyze(prog, core.Options{
		HotspotShare:           *hotspot,
		InferReductionOperator: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetect: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	if *showOps {
		fmt.Println()
		fmt.Print(res.Tree.String())
	}
	if *showDeps {
		fmt.Println("\ncross-loop dependences:")
		fmt.Print(report.CrossLoopPairs(res.Profile))
	}
}
