// Command pardetect runs the full pattern-detection pipeline on one of the
// built-in benchmark programs and prints the detection report: loop classes,
// reduction candidates (Algorithm 3), multi-loop pipeline fits (§III-A),
// fork/worker/barrier classifications (Algorithm 1) and geometric
// decomposition candidates (Algorithm 2).
//
// Usage:
//
//	pardetect [-hotspot 0.02] [-ops] [-deps] [-stats] <benchmark>
//	pardetect -stats-json stats.json <benchmark>
//	pardetect -debug-addr localhost:6060 <benchmark>
//	pardetect -list
//
// -stats appends the telemetry report: the per-phase span tree (wall time
// and allocated bytes), the counter table, the hottest sampled lines and
// the candidate decision log. -stats-json writes the same data as JSON
// (schema pardetect.obs/v1). -debug-addr serves /debug/pprof, /debug/vars
// and /debug/obs on the given address and keeps the process alive after
// printing, for interactive inspection.
package main

import (
	"flag"
	"fmt"
	"os"

	"pardetect/internal/apps"
	"pardetect/internal/core"
	"pardetect/internal/obs"
	"pardetect/internal/report"
)

func main() {
	list := flag.Bool("list", false, "list the available benchmarks and exit")
	hotspot := flag.Float64("hotspot", 0, "hotspot share threshold (default 0.02)")
	showOps := flag.Bool("ops", false, "print the Program Execution Tree with operation counts")
	showDeps := flag.Bool("deps", false, "print the profiled cross-loop dependences")
	showSrc := flag.Bool("src", false, "print the benchmark's mini-IR source")
	stats := flag.Bool("stats", false, "print the telemetry report (phase spans, counters, decision log)")
	statsJSON := flag.String("stats-json", "", "write the telemetry report as JSON to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/obs on this address and wait")
	flag.Parse()

	if *list {
		for _, a := range apps.All() {
			fmt.Printf("%-14s %-10s %s\n", a.Name, a.Suite, a.Expect.Pattern)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pardetect [flags] <benchmark>   (or -list)")
		os.Exit(2)
	}
	name := flag.Arg(0)
	app := apps.Get(name)
	if app == nil {
		fmt.Fprintf(os.Stderr, "pardetect: unknown benchmark %q (try -list)\n", name)
		os.Exit(2)
	}

	var o *obs.Observer
	if *stats || *statsJSON != "" || *debugAddr != "" {
		o = obs.New(name)
	}
	if *debugAddr != "" {
		addr, _, err := obs.ServeDebug(*debugAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pardetect: debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pardetect: debug endpoint at http://%s/debug/\n", addr)
	}

	prog := app.Build()
	if *showSrc {
		fmt.Println(prog)
	}
	res, err := core.Analyze(prog, core.Options{
		HotspotShare:           *hotspot,
		InferReductionOperator: true,
		Observer:               o,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetect: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Summary())
	if *showOps {
		fmt.Println()
		fmt.Print(res.Tree.String())
	}
	if *showDeps {
		fmt.Println("\ncross-loop dependences:")
		fmt.Print(report.CrossLoopPairs(res.Profile))
	}
	if *stats {
		fmt.Println()
		fmt.Print(o.Snapshot().Text())
	}
	if *statsJSON != "" {
		data, err := o.Snapshot().JSON()
		if err == nil {
			err = os.WriteFile(*statsJSON, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pardetect: stats-json: %v\n", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		fmt.Fprintln(os.Stderr, "pardetect: analysis done; debug endpoint stays up (Ctrl-C to exit)")
		select {}
	}
}
