// Command pardetectrouter fronts a fleet of pardetectd replicas with a
// consistent-hashing routing tier (internal/router): every program's content
// fingerprint maps to one home replica on a virtual-node hash ring, so the
// per-replica caches and persistent stores stay hot instead of each replica
// re-analysing the whole working set. The router actively probes backend
// health, ejects dead replicas (remapping only their keys), reinstates them
// on exponential-backoff probes, and fails idempotent requests over to the
// next replica on the ring.
//
// Usage:
//
//	pardetectrouter -backends URL[,URL...] [-addr localhost:7080]
//	                [-vnodes 128] [-probe-interval 1s] [-probe-timeout 2s]
//	                [-fail-after 2] [-max-backoff 30s] [-retries 2]
//
// Endpoints (the pardetectd front-door surface, routed):
//
//	GET  /analyze?app=NAME   routed by the app's program fingerprint
//	POST /analyze            routed by the POSTed program's fingerprint
//	POST /analyze/batch      split per home replica, fanned out, re-merged
//	GET  /apps, /ir          round-robin over alive replicas
//	GET  /healthz            ring membership + per-backend aliveness
//	GET  /metrics            router.* counters + per-backend latency histograms
//
// Tenant (X-Pardetect-Tenant) and X-Request-Id headers pass through
// untouched, so per-tenant fairness and request correlation keep working
// across the tier. Responses carry X-Pardetect-Backend naming the replica
// that served them.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pardetect/internal/router"
)

func main() {
	addr := flag.String("addr", "localhost:7080", "listen address (\":0\" picks a free port; the bound address is printed to stderr)")
	backends := flag.String("backends", "", "comma-separated pardetectd base URLs (required), e.g. http://127.0.0.1:7071,http://127.0.0.1:7072")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 128; changing this remaps placements)")
	probeInterval := flag.Duration("probe-interval", time.Second, "active health-check period (also the reinstatement backoff base)")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe deadline")
	failAfter := flag.Int("fail-after", 2, "consecutive failures that eject a backend from routing")
	maxBackoff := flag.Duration("max-backoff", 30*time.Second, "reinstatement-probe backoff cap for ejected backends")
	retries := flag.Int("retries", 2, "failover attempts on further replicas after the home replica fails (-1 disables)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pardetectrouter -backends URL,URL... [flags]   (no positional arguments)")
		os.Exit(2)
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "pardetectrouter: -backends is required (comma-separated pardetectd URLs)")
		flag.Usage()
		os.Exit(2)
	}

	rt, err := router.New(router.Options{
		Backends:      urls,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		MaxBackoff:    *maxBackoff,
		Retries:       *retries,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetectrouter: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pardetectrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pardetectrouter: listening on http://%s/ (%d backends, %d vnodes each)\n",
		ln.Addr(), len(urls), rt.Ring().VNodes())

	srv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pardetectrouter: %v: exiting\n", sig)
		srv.Close()
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pardetectrouter: serve: %v\n", err)
		os.Exit(1)
	}
}
