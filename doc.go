// Package pardetect is a from-scratch Go reproduction of "Automatic Parallel
// Pattern Detection in the Algorithm Structure Design Space" (Huda, Atre,
// Jannesari, Wolf; IPDPS Workshops 2016): a DiscoPoP-style hybrid
// static/dynamic detector for multi-loop pipelines, loop fusion, task
// parallelism (with fork/worker/barrier classification), geometric
// decomposition and reduction patterns in sequential programs.
//
// The analysis pipeline lives under internal/: a mini-IR and instrumenting
// interpreter replace the paper's LLVM substrate (internal/ir, internal/interp),
// a dynamic dependence profiler and Program Execution Tree reconstruct the
// DiscoPoP analyses (internal/trace, internal/cu, internal/pet), and the
// pattern detectors of §III are implemented in internal/patterns with the
// orchestration in internal/core. The 17 evaluation benchmarks plus the two
// synthetic reduction programs are re-implemented in internal/apps, with the
// evaluation harness in internal/report and the parallel-execution support
// structures in internal/parallel and internal/sched.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package pardetect
