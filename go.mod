module pardetect

go 1.22
