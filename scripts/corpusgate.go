//go:build ignore

// corpusgate structurally validates pardetect.corpus.bench/v1 documents —
// the committed BENCH_corpus.json baseline and the fresh run CI just
// produced — and fails when corpus mode's incremental contract broke.
//
// Usage:
//
//	go run scripts/corpusgate.go -baseline BENCH_corpus.json -fresh /tmp/corpus.json
//
// Both documents are produced by
//
//	parcorpus -bench N [-bench-out FILE]
//
// The gate is structural, not a timing race: wall-clock numbers differ
// across machines and program counts, so no cross-file ratio is compared.
// For each document independently:
//
//   - schema is pardetect.corpus.bench/v1, with programs >= 1 and
//     1 <= dirty_programs <= programs;
//   - the cold pass did real work on everything: analyzed + cached ==
//     programs, nothing skipped, nothing failed;
//   - the warm pass re-analysed NOTHING: skipped == programs and
//     analyzed == cached == failed == 0 — the incremental guarantee that
//     justifies corpus mode existing;
//   - the dirty pass re-analysed exactly the touched programs:
//     analyzed == dirty_programs, skipped == programs - dirty_programs,
//     nothing failed — change detection is precise in both directions
//     (no missed changes, no spurious re-analysis);
//   - the warm pass beat the cold pass on wall time. This is the one
//     within-run timing assertion, and the margin is structural: a warm
//     pass is one decode per file while a cold pass runs the full
//     pipeline per file, so warm < cold by an order of magnitude on any
//     machine — if this trips, skipping has stopped skipping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type pass struct {
	WallNS   int64 `json:"wall_ns"`
	Analyzed int   `json:"analyzed"`
	Cached   int   `json:"cached"`
	Skipped  int   `json:"skipped"`
	Failed   int   `json:"failed"`
}

type doc struct {
	Schema        string `json:"schema"`
	Programs      int    `json:"programs"`
	Jobs          int    `json:"jobs"`
	Engine        string `json:"engine"`
	DirtyPrograms int    `json:"dirty_programs"`
	Cold          pass   `json:"cold"`
	Warm          pass   `json:"warm"`
	Dirty         pass   `json:"dirty"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_corpus.json", "committed corpus bench baseline")
	fresh := flag.String("fresh", "", "fresh corpus bench document to validate")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "corpusgate: -fresh is required")
		os.Exit(2)
	}
	ok := check("baseline", *baseline) && check("fresh", *fresh)
	if !ok {
		os.Exit(1)
	}
	fmt.Println("corpusgate: ok")
}

// check loads and validates one document, printing every violation.
func check(label, path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpusgate: %s: %v\n", label, err)
		return false
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		fmt.Fprintf(os.Stderr, "corpusgate: %s %s: %v\n", label, path, err)
		return false
	}
	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "corpusgate: %s %s: %s\n", label, path, fmt.Sprintf(format, args...))
		ok = false
	}
	if d.Schema != "pardetect.corpus.bench/v1" {
		fail("schema %q, want pardetect.corpus.bench/v1", d.Schema)
		return false
	}
	if d.Programs < 1 {
		fail("programs = %d, want >= 1", d.Programs)
	}
	if d.DirtyPrograms < 1 || d.DirtyPrograms > d.Programs {
		fail("dirty_programs = %d, want 1..%d", d.DirtyPrograms, d.Programs)
	}
	if d.Cold.Analyzed+d.Cold.Cached != d.Programs || d.Cold.Skipped != 0 || d.Cold.Failed != 0 {
		fail("cold pass %+v: want analyzed+cached == %d with zero skipped/failed", d.Cold, d.Programs)
	}
	if d.Warm.Skipped != d.Programs || d.Warm.Analyzed != 0 || d.Warm.Cached != 0 || d.Warm.Failed != 0 {
		fail("warm pass %+v: want all %d skipped, zero re-analysis", d.Warm, d.Programs)
	}
	if d.Dirty.Analyzed != d.DirtyPrograms || d.Dirty.Skipped != d.Programs-d.DirtyPrograms || d.Dirty.Failed != 0 {
		fail("dirty pass %+v: want exactly %d analyzed, %d skipped",
			d.Dirty, d.DirtyPrograms, d.Programs-d.DirtyPrograms)
	}
	if d.Cold.WallNS <= 0 || d.Warm.WallNS <= 0 || d.Dirty.WallNS <= 0 {
		fail("non-positive wall time (cold %d, warm %d, dirty %d)", d.Cold.WallNS, d.Warm.WallNS, d.Dirty.WallNS)
	}
	if d.Warm.WallNS >= d.Cold.WallNS {
		fail("warm pass (%d ns) not faster than cold (%d ns): skipping has stopped skipping", d.Warm.WallNS, d.Cold.WallNS)
	}
	return ok
}
