//go:build ignore

// benchgate compares a fresh BENCH_exec.json run against the committed
// baseline and fails when the bytecode engine got slower.
//
// Usage:
//
//	go run scripts/benchgate.go -baseline BENCH_exec.json -fresh /tmp/exec.json
//
// Both files are pardetect.obs.runset/v1 envelopes as written by
//
//	EXEC_OUT=<file> go test -bench 'BenchmarkExec' -run '^$' .
//
// The gate looks at every label present in both runsets that carries a
// bench.ns_per_op counter and names the bytecode engine, computes the
// geometric mean of the fresh/baseline ratios, and exits 1 when that mean
// exceeds 1+tolerance (default 0.20). A geometric mean over all bytecode
// cells — rather than a per-cell limit — keeps one noisy cell on a busy CI
// box from failing an otherwise healthy run, while a real engine
// regression moves every cell and cannot hide.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

type runset struct {
	Schema string `json:"schema"`
	Runs   []struct {
		Label    string           `json:"label"`
		Counters map[string]int64 `json:"counters"`
	} `json:"runs"`
}

func load(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var set runset
	if err := json.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]int64)
	for _, r := range set.Runs {
		if ns := r.Counters["bench.ns_per_op"]; ns > 0 {
			out[r.Label] = ns
		}
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_exec.json", "committed baseline runset")
	fresh := flag.String("fresh", "", "freshly measured runset (required)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed geomean slowdown of the bytecode engine")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	labels := make([]string, 0, len(base))
	for label := range base {
		if strings.Contains(label, "engine=bytecode") {
			if _, ok := cur[label]; ok {
				labels = append(labels, label)
			}
		}
	}
	sort.Strings(labels)
	if len(labels) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no common engine=bytecode labels between baseline and fresh run")
		os.Exit(2)
	}

	logSum := 0.0
	for _, label := range labels {
		ratio := float64(cur[label]) / float64(base[label])
		logSum += math.Log(ratio)
		fmt.Printf("benchgate: %-55s baseline %12d ns  fresh %12d ns  ratio %.3f\n",
			label, base[label], cur[label], ratio)
	}
	geomean := math.Exp(logSum / float64(len(labels)))
	limit := 1 + *tolerance
	fmt.Printf("benchgate: bytecode geomean ratio %.3f over %d cells (limit %.2f)\n",
		geomean, len(labels), limit)
	if geomean > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — bytecode engine regressed beyond %.0f%%\n", *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
