//go:build ignore

// benchgate compares a fresh BENCH_exec.json run against the committed
// baseline and fails when a compiled engine got slower — or stopped being
// the fastest thing in the building.
//
// Usage:
//
//	go run scripts/benchgate.go -baseline BENCH_exec.json -fresh /tmp/exec.json
//
// Both files are pardetect.obs.runset/v1 envelopes as written by
//
//	EXEC_OUT=<file> go test -bench 'BenchmarkExec' -run '^$' .
//
// Four gates run in sequence:
//
//  1. Bytecode regression: geometric mean of fresh/baseline ratios over all
//     engine=bytecode cells must stay under 1+tolerance (default 0.40 —
//     sized to observed whole-box speed drift between runs on a shared
//     single-CPU CI machine, which moves every cell of both engines
//     together; the within-run gates 3 and 4 below cancel box speed and
//     carry the precise engine-ordering assertions).
//  2. Regvm regression: the same bound over all engine=regvm cells.
//  3. Regvm supremacy on untraced raw execution: over the fresh run's
//     exec/<app>/engine=.../traced=false cells, the geometric mean of the
//     regvm/bytecode ratio must be below 1.0. The register engine exists
//     to be the fastest engine, its committed lead there is ~2×, and a
//     single-shot run never flips a 2× margin — so this pins the ordering
//     in CI without flaking.
//  4. Full-analysis backstop: the same ratio over exec/analysis/... cells
//     must stay at or under 1.30. Analysis is dominated by the
//     engine-independent phase-2 pair profiler, which dilutes the real
//     dispatch-level gap below this box's run-to-run noise — identical
//     code has measured regvm/bytecode analysis geomeans from 0.89 to
//     1.19 — so this gate only catches a regvm analysis collapse, not an
//     ordering (EXPERIMENTS.md reports the engines as statistically
//     indistinguishable on full analysis).
//
// A geometric mean over all cells — rather than a per-cell limit — keeps
// one noisy cell on a busy CI box from failing an otherwise healthy run,
// while a real engine regression moves every cell and cannot hide.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

type runset struct {
	Schema string `json:"schema"`
	Runs   []struct {
		Label    string           `json:"label"`
		Counters map[string]int64 `json:"counters"`
	} `json:"runs"`
}

func load(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var set runset
	if err := json.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]int64)
	for _, r := range set.Runs {
		if ns := r.Counters["bench.ns_per_op"]; ns > 0 {
			out[r.Label] = ns
		}
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_exec.json", "committed baseline runset")
	fresh := flag.String("fresh", "", "freshly measured runset (required)")
	tolerance := flag.Float64("tolerance", 0.40, "allowed cross-run geomean slowdown of a compiled engine (sized above whole-box CI speed drift; within-run gates carry the precise assertions)")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	failed := false
	limit := 1 + *tolerance
	for _, engine := range []string{"bytecode", "regvm"} {
		tag := "engine=" + engine
		labels := make([]string, 0, len(base))
		for label := range base {
			if strings.Contains(label, tag) {
				if _, ok := cur[label]; ok {
					labels = append(labels, label)
				}
			}
		}
		sort.Strings(labels)
		if len(labels) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: no common %s labels between baseline and fresh run\n", tag)
			os.Exit(2)
		}
		logSum := 0.0
		for _, label := range labels {
			ratio := float64(cur[label]) / float64(base[label])
			logSum += math.Log(ratio)
			fmt.Printf("benchgate: %-55s baseline %12d ns  fresh %12d ns  ratio %.3f\n",
				label, base[label], cur[label], ratio)
		}
		geomean := math.Exp(logSum / float64(len(labels)))
		fmt.Printf("benchgate: %s geomean ratio %.3f over %d cells (limit %.2f)\n",
			engine, geomean, len(labels), limit)
		if geomean > limit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s engine regressed beyond %.0f%%\n", engine, *tolerance*100)
			failed = true
		}
	}

	// Regvm supremacy over the closure engine, measured within the fresh
	// run so box speed cancels out. Two comparisons with very different
	// noise floors:
	//
	//   - Untraced raw execution (exec/<app>/engine=.../traced=false) is
	//     where the engines actually differ — regvm's lead is ~1.7× over
	//     the bytecode engine, stable across runs — so the gate demands
	//     strict supremacy there (< 1.00); a single shot never flips a
	//     margin that size.
	//   - Full analysis (exec/analysis/...) is dominated by the
	//     engine-independent phase-2 pair profiler, diluting the engine
	//     gap below run-to-run noise (identical code has measured 0.89 to
	//     1.19 here). The gate only backstops that cell set at <= 1.30 to
	//     catch a regvm analysis collapse; no per-run ordering is
	//     assertable (see EXPERIMENTS.md).
	supremacy := func(prefix, suffix, desc string, limit float64) {
		logSum, cells := 0.0, 0
		for label, rv := range cur {
			if !strings.HasPrefix(label, prefix) || !strings.Contains(label, "engine=regvm") ||
				!strings.HasSuffix(label, suffix) {
				continue
			}
			bc, ok := cur[strings.Replace(label, "engine=regvm", "engine=bytecode", 1)]
			if !ok {
				continue
			}
			logSum += math.Log(float64(rv) / float64(bc))
			cells++
		}
		if cells == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: fresh run has no %s cells for the regvm/bytecode comparison\n", desc)
			os.Exit(2)
		}
		vsClosure := math.Exp(logSum / float64(cells))
		fmt.Printf("benchgate: regvm/bytecode %s geomean %.3f over %d cells (limit %.2f)\n",
			desc, vsClosure, cells, limit)
		if vsClosure > limit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — regvm/bytecode %s geomean above %.2f\n", desc, limit)
			failed = true
		}
	}
	supremacy("exec/", "traced=false", "untraced execution", 1.0)
	supremacy("exec/analysis/", "", "full analysis", 1.30)

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
