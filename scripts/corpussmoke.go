//go:build ignore

// corpussmoke is the CI smoke test for corpus mode (cmd/parcorpus): it
// builds the real binary and proves the incremental-analysis contract end
// to end against a generated fleet of CORPUS_N (default 1000) programs:
//
//   - two COLD runs from clean slates — one at -jobs 4 under the regvm
//     engine, one sequential (-jobs 1) under the tree engine — must emit
//     byte-identical reports: determinism across both the parallelism and
//     the engine axis, asserted on the shipped binary;
//   - a WARM rerun (same corpus, same manifest, same store) must skip all
//     N programs and analyse zero — the acceptance bar is >= 99% avoided
//     work, the assertion here is 100%;
//   - after touching exactly ONE file (regenerated with a fresh seed), the
//     rerun must re-analyse exactly that file and skip the other N-1 —
//     change detection precise in both directions;
//   - a final warm pass at yet another -jobs/-engine combination must be
//     fully skipped again.
//
// The in-process tests in internal/corpus cover the same properties
// white-box; this script proves the shipped binary wires them together.
//
// Usage: go run scripts/corpussmoke.go   (from the repository root)
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

// report mirrors the pardetect.corpus.report/v1 fields the smoke asserts on.
type report struct {
	Schema   string `json:"schema"`
	Programs int    `json:"programs"`
	Analyzed int    `json:"analyzed"`
	Cached   int    `json:"cached"`
	Skipped  int    `json:"skipped"`
	Failed   int    `json:"failed"`
	Results  []struct {
		Path    string `json:"path"`
		Outcome string `json:"outcome"`
	} `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "corpussmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("corpussmoke: ok")
}

func run() error {
	n := 1000
	if env := os.Getenv("CORPUS_N"); env != "" {
		if _, err := fmt.Sscanf(env, "%d", &n); err != nil || n < 2 {
			return fmt.Errorf("bad CORPUS_N=%q", env)
		}
	}
	scratch, err := os.MkdirTemp("", "corpussmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	bin := filepath.Join(scratch, "parcorpus")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/parcorpus").CombinedOutput(); err != nil {
		return fmt.Errorf("go build ./cmd/parcorpus: %v\n%s", err, out)
	}

	corpusDir := filepath.Join(scratch, "corpus")
	if _, err := parcorpus(bin, "-dir", corpusDir, "-gen", fmt.Sprint(n)); err != nil {
		return err
	}

	// Two cold runs from clean slates, differing in both -jobs and -engine.
	manifest := filepath.Join(scratch, "manifest.json")
	store := filepath.Join(scratch, "store")
	repA := filepath.Join(scratch, "repA.json")
	if _, err := parcorpus(bin, "-dir", corpusDir, "-manifest", manifest, "-store-dir", store,
		"-jobs", "4", "-engine", "regvm", "-json", "-out", repA); err != nil {
		return err
	}
	repB := filepath.Join(scratch, "repB.json")
	if _, err := parcorpus(bin, "-dir", corpusDir,
		"-manifest", filepath.Join(scratch, "manifestB.json"),
		"-store-dir", filepath.Join(scratch, "storeB"),
		"-jobs", "1", "-engine", "tree", "-json", "-out", repB); err != nil {
		return err
	}
	a, err := os.ReadFile(repA)
	if err != nil {
		return err
	}
	b, err := os.ReadFile(repB)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("cold reports differ between -jobs 4/-engine regvm and -jobs 1/-engine tree")
	}
	cold, err := parse(a)
	if err != nil {
		return err
	}
	if cold.Programs != n || cold.Analyzed+cold.Cached != n || cold.Failed != 0 || cold.Skipped != 0 {
		return fmt.Errorf("cold run counts: %+v, want %d analysed-or-cached", cold, n)
	}
	fmt.Printf("corpussmoke: cold run over %d programs, reports byte-identical across jobs and engines\n", n)

	// Warm rerun: everything skipped, nothing analysed — at yet another
	// -jobs/-engine combination, since skipping must not depend on either.
	warm, err := runAndParse(bin, scratch, "repW.json",
		"-dir", corpusDir, "-manifest", manifest, "-store-dir", store, "-jobs", "8", "-engine", "bytecode")
	if err != nil {
		return err
	}
	if warm.Skipped != n || warm.Analyzed != 0 || warm.Cached != 0 || warm.Failed != 0 {
		return fmt.Errorf("warm run: %+v, want all %d skipped", warm, n)
	}
	fmt.Printf("corpussmoke: warm run skipped all %d (zero re-analysis)\n", n)

	// Touch exactly one file: regenerate index 7 from a seed far outside the
	// corpus's own seed range, via the binary's own generator.
	dirtyDir := filepath.Join(scratch, "dirty")
	if _, err := parcorpus(bin, "-dir", dirtyDir, "-gen", "1", "-seed", "424242"); err != nil {
		return err
	}
	touched := "p00007.json"
	fresh, err := os.ReadFile(filepath.Join(dirtyDir, "p00000.json"))
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(corpusDir, touched), fresh, 0o644); err != nil {
		return err
	}
	dirty, err := runAndParse(bin, scratch, "repD.json",
		"-dir", corpusDir, "-manifest", manifest, "-store-dir", store, "-jobs", "4", "-engine", "regvm")
	if err != nil {
		return err
	}
	if dirty.Analyzed != 1 || dirty.Skipped != n-1 || dirty.Failed != 0 {
		return fmt.Errorf("dirty run: %+v, want exactly 1 analyzed and %d skipped", dirty, n-1)
	}
	for _, r := range dirty.Results {
		want := "skipped"
		if r.Path == touched {
			want = "analyzed"
		}
		if r.Outcome != want {
			return fmt.Errorf("dirty run: %s outcome %q, want %q", r.Path, r.Outcome, want)
		}
	}
	fmt.Printf("corpussmoke: touched %s, rerun re-analysed exactly that program\n", touched)

	// And the corpus is warm again.
	warm2, err := runAndParse(bin, scratch, "repW2.json",
		"-dir", corpusDir, "-manifest", manifest, "-store-dir", store, "-jobs", "2", "-engine", "tree")
	if err != nil {
		return err
	}
	if warm2.Skipped != n || warm2.Analyzed != 0 {
		return fmt.Errorf("post-dirty warm run: %+v, want all %d skipped", warm2, n)
	}
	return nil
}

// parcorpus runs the built binary, failing on a non-zero exit.
func parcorpus(bin string, args ...string) ([]byte, error) {
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("parcorpus %v: %v\n%s", args, err, out)
	}
	return out, nil
}

// runAndParse runs one corpus pass writing a JSON report and parses it.
func runAndParse(bin, scratch, repName string, args ...string) (*report, error) {
	repPath := filepath.Join(scratch, repName)
	if _, err := parcorpus(bin, append(args, "-json", "-out", repPath)...); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(repPath)
	if err != nil {
		return nil, err
	}
	return parse(data)
}

func parse(data []byte) (*report, error) {
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bad corpus report: %v", err)
	}
	if r.Schema != "pardetect.corpus.report/v1" {
		return nil, fmt.Errorf("report schema %q", r.Schema)
	}
	return &r, nil
}
