#!/bin/sh
# goldens.sh — golden-table gate for the paper's evaluation tables.
#
# The committed files under testdata/goldens/ are the byte-exact renderings
# of Tables III, IV and V (cmd/benchtab -table N). "check" (the default, and
# what ci.sh runs) regenerates each table under ALL THREE interpreter
# engines (tree, bytecode, regvm) and byte-compares each against the one
# golden; any drift — an intentional detector change, an accidental
# regression, or an engine divergence — fails the gate and prints the
# diff. After an
# intentional change, rerun in "update" mode (goldens are written from the
# tree engine, then re-checked under the compiled engines) and commit the
# new goldens with the change that caused them.
#
# Usage: scripts/goldens.sh [check|update]
set -eu

cd "$(dirname "$0")/.."
mode="${1:-check}"
case "$mode" in
check | update) ;;
*)
    echo "usage: scripts/goldens.sh [check|update]" >&2
    exit 2
    ;;
esac

bin=$(mktemp)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/benchtab

mkdir -p testdata/goldens
rc=0
for t in 3 4 5; do
    golden="testdata/goldens/table$t.txt"
    if [ "$mode" = update ]; then
        "$bin" -engine tree -table "$t" >"$golden"
        echo "goldens: wrote $golden"
    fi
    for engine in tree bytecode regvm; do
        tmp="$golden.new"
        "$bin" -engine "$engine" -table "$t" >"$tmp"
        if [ ! -f "$golden" ]; then
            echo "goldens: missing $golden (run: scripts/goldens.sh update)" >&2
            rm -f "$tmp"
            rc=1
            continue
        fi
        if cmp -s "$golden" "$tmp"; then
            rm -f "$tmp"
            echo "goldens: table $t ok (engine=$engine)"
        else
            echo "goldens: table $t drifted (engine=$engine):" >&2
            diff -u "$golden" "$tmp" >&2 || true
            rm -f "$tmp"
            rc=1
        fi
    done
done
[ "$rc" -eq 0 ] && echo "goldens: all tables match under all three engines"
exit "$rc"
