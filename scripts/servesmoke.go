//go:build ignore

// servesmoke is the CI smoke test for the pardetectd analysis service
// (cmd/pardetectd): it builds the real binary, starts it on an ephemeral
// port, and exercises the service behaviors end to end over HTTP —
// liveness, an uncached and a cached analysis (counter-verified via the
// X-Pardetect-Cache header and byte-compared bodies), a batch NDJSON
// request, admission backpressure (429 + Retry-After while the single
// worker is occupied), and a clean SIGTERM drain. It then relaunches the
// binary on the same -store-dir and requires the very first request of the
// new process to be a cache hit with a byte-identical body: the persistent
// store's restart durability, proven against the real binary and a real
// SIGTERM. Finally it builds cmd/pardetectrouter, starts three pardetectd
// backends (each with its own store directory) behind the router binary, and
// proves the routing tier end to end: cache affinity (repeat requests are
// hits on the same home replica), batch fan-out across replicas, and
// failover — the home replica of a routed app is SIGKILLed mid-run, after
// which the same request must still succeed from another replica with zero
// client-visible errors and the router's /healthz must report the dead
// backend ejected. The in-process test suite covers the same behaviors
// white-box; this script proves the shipped binaries wire them together.
//
// Usage: go run scripts/servesmoke.go   (from the repository root; ci.sh
// runs it after the golden gate)
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"
)

// slowWire is a valid wire-IR program (see internal/server's codec) whose
// analysis interprets ~1.6M loop iterations: long enough for the smoke to
// observe it occupying the worker. Kept as a literal so the smoke exercises
// the POST surface exactly as an external client would.
const slowWire = `{"name":"smoke-slow","entry":"main","arrays":[{"name":"a","dims":[64]}],"funcs":[{"name":"main","line":1,"body":[{"kind":"for","line":2,"loop_id":"main.L1","var":"i","start":{"kind":"const"},"end":{"kind":"const","v":1300},"step":{"kind":"const","v":1},"body":[{"kind":"for","line":3,"loop_id":"main.L2","var":"j","start":{"kind":"const"},"end":{"kind":"const","v":1300},"step":{"kind":"const","v":1},"body":[{"kind":"assign","line":4,"dst":{"kind":"elem","arr":"a","idx":[{"kind":"bin","op":"%","l":{"kind":"var","name":"j"},"r":{"kind":"const","v":64}}]},"src":{"kind":"bin","op":"+","l":{"kind":"elem","arr":"a","idx":[{"kind":"bin","op":"%","l":{"kind":"var","name":"j"},"r":{"kind":"const","v":64}}]},"r":{"kind":"const","v":1}}}]}]},{"kind":"return","line":5,"val":{"kind":"elem","arr":"a","idx":[{"kind":"const"}]}}]}]}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

// daemon is one running pardetectd process with its captured stderr log.
type daemon struct {
	cmd     *exec.Cmd
	base    string
	log     *logBuf
	logDone chan struct{}
}

// startDaemon launches the binary, waits for its bound address on stderr and
// keeps draining the pipe so the process never blocks on it.
func startDaemon(bin string, args ...string) (*daemon, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start pardetectd: %v", err)
	}
	d := &daemon{cmd: cmd, log: &logBuf{}, logDone: make(chan struct{})}
	lines := bufio.NewScanner(stderr)
	addrRe := regexp.MustCompile(`listening on http://([^/]+)/`)
	for lines.Scan() {
		d.log.add(lines.Text())
		if m := addrRe.FindStringSubmatch(lines.Text()); m != nil {
			d.base = "http://" + m[1]
			break
		}
	}
	if d.base == "" {
		cmd.Process.Kill()
		return nil, fmt.Errorf("no listening address on stderr:\n%s", d.log.String())
	}
	go func() {
		defer close(d.logDone)
		for lines.Scan() {
			d.log.add(lines.Text())
		}
	}()
	return d, nil
}

// drain SIGTERMs the daemon and requires a clean exit with the drain message.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-d.logDone:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	if err := d.cmd.Wait(); err != nil {
		return fmt.Errorf("daemon exit after SIGTERM: %v\nlog:\n%s", err, d.log.String())
	}
	if !strings.Contains(d.log.String(), "drained") {
		return fmt.Errorf("daemon log missing drain message:\n%s", d.log.String())
	}
	return nil
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "pardetectd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pardetectd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build pardetectd: %v", err)
	}
	storeDir := filepath.Join(tmp, "store")

	// One worker, zero queue: the backpressure probe below is deterministic.
	d, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-queue", "0", "-store-dir", storeDir)
	if err != nil {
		return err
	}
	defer d.cmd.Process.Kill()
	fmt.Printf("servesmoke: daemon at %s\n", d.base)

	bicgBody, err := probe(d.base)
	if err != nil {
		return err
	}

	// Clean shutdown: SIGTERM must drain (flushing the persistent store) and
	// exit 0.
	if err := d.drain(); err != nil {
		return err
	}
	fmt.Println("servesmoke: drained cleanly on SIGTERM")

	// Restart durability: a fresh process on the same -store-dir must serve
	// the first bicg request as a hit, byte-identical to the pre-restart
	// analysis, without re-analysing.
	d2, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-queue", "0", "-store-dir", storeDir)
	if err != nil {
		return fmt.Errorf("relaunch on the store dir: %v", err)
	}
	defer d2.cmd.Process.Kill()
	status, h, body, err := get(d2.base + "/analyze?app=bicg")
	if err != nil || status != 200 {
		return fmt.Errorf("post-restart analyze: status %d err %v body %s", status, err, body)
	}
	if v := h.Get("X-Pardetect-Cache"); v != "hit" {
		return fmt.Errorf("first request after restart: X-Pardetect-Cache %q, want hit (store not durable)", v)
	}
	if !bytes.Equal(body, bicgBody) {
		return fmt.Errorf("post-restart hit body differs from the pre-restart analysis")
	}
	fmt.Println("servesmoke: restart on the same -store-dir served a byte-identical hit")
	if err := d2.drain(); err != nil {
		return err
	}
	fmt.Println("servesmoke: second daemon drained cleanly")

	return routerLeg(tmp, bin)
}

// routerLeg proves the sharded routing tier against the real binaries:
// three pardetectd backends behind a pardetectrouter process, exercising
// affinity, batch fan-out and a SIGKILLed backend mid-run.
func routerLeg(tmp, pardetectd string) error {
	rbin := filepath.Join(tmp, "pardetectrouter")
	build := exec.Command("go", "build", "-o", rbin, "./cmd/pardetectrouter")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build pardetectrouter: %v", err)
	}

	var backends []*daemon
	var urls []string
	for i := 0; i < 3; i++ {
		b, err := startDaemon(pardetectd, "-addr", "127.0.0.1:0",
			"-store-dir", filepath.Join(tmp, fmt.Sprintf("rstore-%d", i)))
		if err != nil {
			return fmt.Errorf("router leg backend %d: %v", i, err)
		}
		defer b.cmd.Process.Kill()
		backends = append(backends, b)
		urls = append(urls, b.base)
	}
	rd, err := startDaemon(rbin, "-addr", "127.0.0.1:0",
		"-backends", strings.Join(urls, ","),
		"-probe-interval", "100ms", "-fail-after", "1")
	if err != nil {
		return fmt.Errorf("router leg: %v", err)
	}
	defer rd.cmd.Process.Kill()
	fmt.Printf("servesmoke: router at %s over 3 backends\n", rd.base)

	status, _, hz, err := get(rd.base + "/healthz")
	if err != nil || status != 200 || !strings.Contains(string(hz), `"status":"ok"`) {
		return fmt.Errorf("router healthz: status %d err %v body %s", status, err, hz)
	}

	// Affinity: each app's repeat request must be a cache hit served by the
	// same home replica, and the apps must spread over more than one replica.
	apps := []string{"2mm", "3mm", "bicg", "mvt", "gesummv", "ludcmp", "sort", "fib"}
	home := map[string]string{}
	spread := map[string]bool{}
	for _, app := range apps {
		status, h1, _, err := get(rd.base + "/analyze?app=" + app)
		if err != nil || status != 200 {
			return fmt.Errorf("routed analyze %s: status %d err %v", app, status, err)
		}
		home[app] = h1.Get("X-Pardetect-Backend")
		spread[home[app]] = true
		status, h2, _, err := get(rd.base + "/analyze?app=" + app)
		if err != nil || status != 200 {
			return fmt.Errorf("routed repeat %s: status %d err %v", app, status, err)
		}
		if got := h2.Get("X-Pardetect-Backend"); got != home[app] {
			return fmt.Errorf("repeat %s routed to %s, want home %s (affinity broken)", app, got, home[app])
		}
		if v := h2.Get("X-Pardetect-Cache"); v != "hit" {
			return fmt.Errorf("repeat %s: X-Pardetect-Cache %q, want hit on the home replica", app, v)
		}
	}
	if len(spread) < 2 {
		return fmt.Errorf("all %d apps homed on one replica %v — the ring is not distributing", len(apps), spread)
	}
	fmt.Printf("servesmoke: routed affinity over %d replicas, every repeat a home-replica hit\n", len(spread))

	// Batch through the router: one decodable line and one garbage line,
	// merged back under the client's indices with a backend tag.
	irStatus, _, irBody, err := get(rd.base + "/ir?app=bicg")
	if err != nil || irStatus != 200 {
		return fmt.Errorf("routed ir: status %d err %v", irStatus, err)
	}
	batch := append(append([]byte{}, bytes.TrimSpace(irBody)...), '\n')
	batch = append(batch, []byte("{not json\n")...)
	status, _, bout, err := post(rd.base+"/analyze/batch", batch)
	if err != nil || status != 200 {
		return fmt.Errorf("routed batch: status %d err %v body %s", status, err, bout)
	}
	if !bytes.Contains(bout, []byte(`"outcome":"hit"`)) || !bytes.Contains(bout, []byte(`"outcome":"bad_line"`)) ||
		!bytes.Contains(bout, []byte(`"backend":`)) {
		return fmt.Errorf("routed batch lines missing hit/bad_line outcomes or backend tags: %s", bout)
	}
	fmt.Println("servesmoke: routed batch fan-out merged per-line outcomes")

	// Failover: SIGKILL bicg's home replica — no drain, no flush — then the
	// same request must succeed from another replica with no client-visible
	// error, and the router must report the dead backend ejected.
	victim := home["bicg"]
	for _, b := range backends {
		if b.base == victim {
			if err := b.cmd.Process.Kill(); err != nil {
				return fmt.Errorf("SIGKILL %s: %v", victim, err)
			}
			b.cmd.Wait()
		}
	}
	status, h, _, err := get(rd.base + "/analyze?app=bicg")
	if err != nil || status != 200 {
		return fmt.Errorf("analyze bicg after SIGKILLing %s: status %d err %v (client saw the failure)", victim, status, err)
	}
	if got := h.Get("X-Pardetect-Backend"); got == victim || got == "" {
		return fmt.Errorf("failover request served by %q, want a surviving replica", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, hz, err := get(rd.base + "/healthz")
		if err != nil {
			return fmt.Errorf("router healthz after kill: %v", err)
		}
		if strings.Contains(string(hz), `"status":"degraded"`) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router never reported the SIGKILLed backend ejected: %s", hz)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("servesmoke: SIGKILLed the home replica; failover served the request, router ejected the backend")

	for _, b := range backends {
		if b.base != victim {
			if err := b.drain(); err != nil {
				return fmt.Errorf("router leg backend drain: %v", err)
			}
		}
	}
	if err := rd.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := rd.cmd.Wait(); err != nil {
		return fmt.Errorf("router exit after SIGTERM: %v\nlog:\n%s", err, rd.log.String())
	}
	fmt.Println("servesmoke: router and surviving backends shut down cleanly")
	return nil
}

// logBuf accumulates daemon stderr lines; the drain goroutine writes while
// error paths read, so access is locked.
type logBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuf) add(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.WriteString(line)
	l.b.WriteByte('\n')
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// probe exercises the serving behaviors and returns the bicg analysis body
// for the restart leg's byte-comparison.
func probe(base string) ([]byte, error) {
	// Liveness.
	status, _, body, err := get(base + "/healthz")
	if err != nil || status != 200 || !strings.Contains(string(body), `"status":"ok"`) {
		return nil, fmt.Errorf("healthz: status %d err %v body %s", status, err, body)
	}
	fmt.Println("servesmoke: healthz ok")

	// Uncached then cached analysis of a registered app.
	status, h1, b1, err := get(base + "/analyze?app=bicg")
	if err != nil || status != 200 {
		return nil, fmt.Errorf("analyze bicg: status %d err %v body %s", status, err, b1)
	}
	if v := h1.Get("X-Pardetect-Cache"); v != "miss" {
		return nil, fmt.Errorf("first analyze: X-Pardetect-Cache %q, want miss", v)
	}
	status, h2, b2, err := get(base + "/analyze?app=bicg")
	if err != nil || status != 200 {
		return nil, fmt.Errorf("analyze bicg again: status %d err %v", status, err)
	}
	if v := h2.Get("X-Pardetect-Cache"); v != "hit" {
		return nil, fmt.Errorf("second analyze: X-Pardetect-Cache %q, want hit", v)
	}
	if !bytes.Equal(b1, b2) {
		return nil, fmt.Errorf("cache hit body differs from the miss body")
	}
	fmt.Println("servesmoke: cache miss then counter-verified hit, identical bodies")

	// Batch NDJSON: two lines (a cached hit and an undecodable line) come
	// back as two result lines, each with its own outcome.
	irStatus, _, irBody, err := get(base + "/ir?app=bicg")
	if err != nil || irStatus != 200 {
		return nil, fmt.Errorf("ir bicg: status %d err %v", irStatus, err)
	}
	batch := append(append([]byte{}, bytes.TrimSpace(irBody)...), '\n')
	batch = append(batch, []byte("{not json\n")...)
	status, _, bout, err := post(base+"/analyze/batch", batch)
	if err != nil || status != 200 {
		return nil, fmt.Errorf("batch: status %d err %v body %s", status, err, bout)
	}
	var hits, bad int
	for _, line := range bytes.Split(bytes.TrimSpace(bout), []byte("\n")) {
		switch {
		case bytes.Contains(line, []byte(`"outcome":"hit"`)):
			hits++
		case bytes.Contains(line, []byte(`"outcome":"bad_line"`)):
			bad++
		}
	}
	if hits != 1 || bad != 1 {
		return nil, fmt.Errorf("batch outcomes: %d hit + %d bad_line, want 1 + 1; body %s", hits, bad, bout)
	}
	fmt.Println("servesmoke: batch NDJSON served per-line outcomes")

	// Backpressure: occupy the single worker with a slow POSTed program,
	// then a request that needs a worker must bounce with 429.
	occupied := make(chan error, 1)
	go func() {
		status, _, body, err := post(base+"/analyze?cache=skip", []byte(slowWire))
		if err == nil && status != 200 {
			err = fmt.Errorf("status %d: %s", status, body)
		}
		occupied <- err
	}()
	if err := waitRunning(base, 1); err != nil {
		return nil, err
	}
	status, h3, body, err := get(base + "/analyze?app=2mm&cache=skip")
	if err != nil {
		return nil, err
	}
	if status != http.StatusTooManyRequests {
		return nil, fmt.Errorf("backpressure probe: status %d, want 429 (body %s)", status, body)
	}
	if h3.Get("Retry-After") == "" {
		return nil, fmt.Errorf("429 without Retry-After")
	}
	if err := <-occupied; err != nil {
		return nil, fmt.Errorf("occupying analysis: %v", err)
	}
	fmt.Println("servesmoke: full queue answered 429 with Retry-After")
	return b1, nil
}

// waitRunning polls /healthz until the running gauge reaches n.
func waitRunning(base string, n int) error {
	deadline := time.Now().Add(30 * time.Second)
	want := fmt.Sprintf(`"running":%d`, n)
	for time.Now().Before(deadline) {
		_, _, body, err := get(base + "/healthz")
		if err != nil {
			return err
		}
		if strings.Contains(string(body), want) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("worker never reached running=%d", n)
}

func get(url string) (int, http.Header, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body, err
}

func post(url string, data []byte) (int, http.Header, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body, err
}
