#!/bin/sh
# hygiene.sh — repo-hygiene gate: the tree must not track build products.
#
# Fails when `git ls-files` contains:
#   - scratch benchmark artifacts (*.fresh.json) — those are per-run outputs
#     that ci.sh writes into a temp dir; a committed one staleness-poisons
#     every later baseline comparison;
#   - files with the executable bit outside *.sh — compiled binaries
#     accidentally `git add`ed from the repo root;
#   - files with binary content (grep's binary-files classification — a
#     tracked file the tools would refuse to diff is a build product).
#
# Usage: sh scripts/hygiene.sh   (ci.sh runs it first; the GitHub workflow
# runs it as its own named step so a violation is visible at a glance)
set -eu

cd "$(dirname "$0")/.."

violations=$(
    git ls-files -- '*.fresh.json' | sed 's/^/scratch artifact: /'
    git ls-files | while IFS= read -r f; do
        if [ ! -f "$f" ]; then continue; fi
        case "$f" in
        *.sh) ;;
        *) if [ -x "$f" ]; then echo "executable bit: $f"; fi ;;
        esac
        if [ -s "$f" ] && ! LC_ALL=C grep -qI '' "$f"; then
            echo "binary content: $f"
        fi
    done
)
if [ -n "$violations" ]; then
    echo "tracked files violating repo hygiene:" >&2
    echo "$violations" >&2
    echo "(binaries and *.fresh.json are build products: git rm --cached them; .gitignore covers the usual ones)" >&2
    exit 1
fi
echo "hygiene: clean ($(git ls-files | wc -l | tr -d ' ') tracked files)"
