//go:build ignore

// opprofile regenerates internal/interp/testdata/opcode_pairs.json, the
// committed dynamic opcode-pair profile the regvm superinstruction set was
// selected from (DESIGN.md §10).
//
// Usage:
//
//	go run scripts/opprofile.go [-out internal/interp/testdata/opcode_pairs.json] [-top 40]
//
// Every Table III app runs twice under the regvm with fusion disabled — an
// untraced functional run and a traced profiling run — and the dynamic
// opcode-pair counts of all runs are summed. Rerun this after changing the
// lowering or the app suite, then revisit which pairs deserve a fused form
// in internal/interp/gen_ops.go; TestOpcodePairProfile pins the fused
// shapes to the committed evidence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pardetect/internal/apps"
	"pardetect/internal/interp"
	"pardetect/internal/trace"
)

type profile struct {
	Schema string           `json:"schema"`
	Apps   []string         `json:"apps"`
	Top    []string         `json:"top"`
	Pairs  map[string]int64 `json:"pairs"`
}

func main() {
	out := flag.String("out", "internal/interp/testdata/opcode_pairs.json", "output path")
	top := flag.Int("top", 40, "how many most-frequent pairs to list in the top field")
	flag.Parse()

	p := profile{Schema: "pardetect.interp.oppairs/v1", Pairs: map[string]int64{}}
	for _, name := range apps.TableIIIOrder {
		prog := apps.Get(name).Build()
		for _, traced := range []bool{false, true} {
			opts := interp.Options{}
			if traced {
				opts.Tracer = trace.NewCollector()
			}
			pairs, err := interp.ProfileOpcodePairs(prog, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "opprofile: %s traced=%v: %v\n", name, traced, err)
				os.Exit(1)
			}
			for k, n := range pairs {
				p.Pairs[k] += n
			}
		}
		p.Apps = append(p.Apps, name)
	}
	p.Top = interp.TopOpcodePairs(p.Pairs, *top)

	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprofile:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "opprofile:", err)
		os.Exit(1)
	}
	fmt.Printf("opprofile: %d pairs over %d apps -> %s\n", len(p.Pairs), len(p.Apps), *out)
}
