//go:build ignore

// servegate validates a fresh BENCH_serve.json run (cmd/servebench) and
// compares it against the committed baseline.
//
// Usage:
//
//	go run scripts/servegate.go -baseline BENCH_serve.json -fresh /tmp/serve.json
//
// Both files are pardetect.serve/v1 envelopes. The gate is structural
// first — the serving path must actually have served: requests and
// throughput positive, quantiles present and ordered (p50 ≤ p99), rates in
// [0,1], the server's /metrics scrape carrying populated histogram
// buckets. The serving-feature legs are gated on correctness, not speed:
// the batch leg must have streamed result lines, the warm-restart leg must
// have served every replayed program from the restarted store (hit_rate ≥
// 0.999 — durability is not allowed to flake), the fairness leg must show
// the hog rejected while the victims essentially are not, the router
// leg (-replicas N) must show cache affinity (home_hit_rate ≥ 0.95 — the
// replay hits the same replica's cache) with zero client-visible errors
// after one replica is killed mid-run, and the engines leg must carry a
// populated cell for every interpreter engine (tree, bytecode, regvm) with
// positive latencies and zero errors — the ranking between engines is NOT
// gated here (tiny pool programs make HTTP overhead rival execution time;
// BENCH_exec.json under scripts/benchgate.go owns that). The baseline
// comparison is deliberately loose: CI boxes differ wildly in speed, so
// only a collapse (fresh throughput below 1/20 of the baseline) fails the
// gate; ordinary drift does not. Exit 1 on violation.
//
// Legs disabled in the fresh run's config (-batch 0, -restart=false,
// -tenants 0, -engines=false) are skipped, so ad-hoc servebench invocations
// still gate; ci.sh runs with the defaults, which enable them all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type serveResult struct {
	Schema string `json:"schema"`
	Config struct {
		Batch    int  `json:"batch"`
		Restart  bool `json:"restart"`
		Tenants  int  `json:"tenants"`
		Replicas int  `json:"replicas"`
		Engines  bool `json:"engines"`
	} `json:"config"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyNS     struct {
		P50 int64 `json:"p50"`
		P90 int64 `json:"p90"`
		P99 int64 `json:"p99"`
	} `json:"latency_ns"`
	HitRate    float64 `json:"hit_rate"`
	RejectRate float64 `json:"reject_rate"`
	Server     struct {
		HistogramBucketLines int `json:"histogram_bucket_lines"`
	} `json:"server"`
	Batch *struct {
		Requests int64            `json:"requests"`
		Lines    int64            `json:"lines"`
		Outcomes map[string]int64 `json:"outcomes"`
	} `json:"batch"`
	WarmRestart *struct {
		Programs int     `json:"programs"`
		Hits     int64   `json:"hits"`
		HitRate  float64 `json:"hit_rate"`
	} `json:"warm_restart"`
	Fairness *struct {
		HogRequests      int64   `json:"hog_requests"`
		HogRejects       int64   `json:"hog_rejects"`
		VictimRequests   int64   `json:"victim_requests"`
		HogRejectRate    float64 `json:"hog_reject_rate"`
		VictimRejectRate float64 `json:"victim_reject_rate"`
	} `json:"fairness"`
	Router *struct {
		Replicas         int              `json:"replicas"`
		Programs         int              `json:"programs"`
		HomeHitRate      float64          `json:"home_hit_rate"`
		BackendShare     map[string]int64 `json:"backend_share"`
		FailoverRequests int64            `json:"failover_requests"`
		FailoverErrors   int64            `json:"failover_errors"`
		FailoverRemapped int64            `json:"failover_remapped"`
	} `json:"router"`
	Engines map[string]*struct {
		Requests int64 `json:"requests"`
		Errors   int64 `json:"errors"`
		P50NS    int64 `json:"p50_ns"`
		MeanNS   int64 `json:"mean_ns"`
	} `json:"engines"`
}

func load(path string) (serveResult, error) {
	var r serveResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_serve.json", "committed baseline result")
	fresh := flag.String("fresh", "", "fresh result to validate (required)")
	collapse := flag.Float64("collapse", 20, "fail when fresh throughput is below baseline/collapse")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "servegate: -fresh is required")
		os.Exit(2)
	}

	f, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servegate: %v\n", err)
		os.Exit(1)
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "servegate: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	if f.Schema != "pardetect.serve/v1" {
		fail("schema = %q, want pardetect.serve/v1", f.Schema)
	}
	if f.Requests <= 0 {
		fail("requests = %d, want > 0 (the load loop served nothing)", f.Requests)
	}
	if f.ThroughputRPS <= 0 {
		fail("throughput_rps = %g, want > 0", f.ThroughputRPS)
	}
	if f.LatencyNS.P50 <= 0 {
		fail("latency p50 = %d, want > 0", f.LatencyNS.P50)
	}
	if f.LatencyNS.P99 < f.LatencyNS.P50 || f.LatencyNS.P90 < f.LatencyNS.P50 {
		fail("latency quantiles unordered: p50=%d p90=%d p99=%d",
			f.LatencyNS.P50, f.LatencyNS.P90, f.LatencyNS.P99)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"hit_rate", f.HitRate}, {"reject_rate", f.RejectRate}} {
		if r.v < 0 || r.v > 1 {
			fail("%s = %g, want in [0,1]", r.name, r.v)
		}
	}
	if f.Server.HistogramBucketLines <= 0 {
		fail("server histogram_bucket_lines = %d, want > 0 (/metrics histograms empty)",
			f.Server.HistogramBucketLines)
	}
	if f.Errors > f.Requests/10 {
		fail("errors = %d of %d requests (>10%% transport failures)", f.Errors, f.Requests)
	}

	// The serving-feature legs: each is required when its config enabled it.
	if f.Config.Batch > 0 {
		if f.Batch == nil {
			fail("config enables the batch leg but the result has no batch section")
		}
		if f.Batch.Requests <= 0 || f.Batch.Lines <= 0 {
			fail("batch leg served nothing: %d requests, %d lines", f.Batch.Requests, f.Batch.Lines)
		}
		var ok int64
		for _, oc := range []string{"hit", "miss", "join"} {
			ok += f.Batch.Outcomes[oc]
		}
		if ok <= 0 {
			fail("batch leg produced no successful lines: outcomes %v", f.Batch.Outcomes)
		}
	}
	if f.Config.Restart {
		if f.WarmRestart == nil {
			fail("config enables the warm-restart leg but the result has no warm_restart section")
		}
		if f.WarmRestart.Programs <= 0 {
			fail("warm-restart leg replayed no programs")
		}
		if f.WarmRestart.HitRate < 0.999 {
			fail("warm-restart hit_rate = %.3f (%d/%d), want >= 0.999 — the store is not restart-durable",
				f.WarmRestart.HitRate, f.WarmRestart.Hits, f.WarmRestart.Programs)
		}
	}
	if f.Config.Tenants > 0 {
		if f.Fairness == nil {
			fail("config enables the fairness leg but the result has no fairness section")
		}
		if f.Fairness.HogRequests <= 0 || f.Fairness.VictimRequests <= 0 {
			fail("fairness leg sent no traffic: hog %d, victims %d",
				f.Fairness.HogRequests, f.Fairness.VictimRequests)
		}
		if f.Fairness.HogRejects <= 0 {
			fail("fairness: the hog was never rejected (%d requests) — the tenant limiter is not enforcing",
				f.Fairness.HogRequests)
		}
		if f.Fairness.VictimRejectRate > 0.01 {
			fail("fairness: victim reject rate %.3f > 0.01 — the hog starved other tenants",
				f.Fairness.VictimRejectRate)
		}
		if f.Fairness.HogRejectRate <= f.Fairness.VictimRejectRate {
			fail("fairness: hog reject rate %.3f not above victim rate %.3f",
				f.Fairness.HogRejectRate, f.Fairness.VictimRejectRate)
		}
	}

	if f.Config.Replicas > 0 {
		if f.Router == nil {
			fail("config enables the router leg but the result has no router section")
		}
		if f.Router.Programs <= 0 || f.Router.FailoverRequests <= 0 {
			fail("router leg sent no traffic: %d programs, %d failover requests",
				f.Router.Programs, f.Router.FailoverRequests)
		}
		if f.Router.HomeHitRate < 0.95 {
			fail("router home_hit_rate = %.3f, want >= 0.95 — replayed programs are not hitting their home replica's cache",
				f.Router.HomeHitRate)
		}
		if f.Router.FailoverErrors > 0 {
			fail("router failover_errors = %d, want 0 — killing one replica leaked failures to clients",
				f.Router.FailoverErrors)
		}
		if f.Config.Replicas >= 2 && len(f.Router.BackendShare) < 2 {
			fail("router backend_share names %d replicas, want >= 2 — the ring routed everything to one backend",
				len(f.Router.BackendShare))
		}
	}

	if f.Config.Engines {
		if f.Engines == nil {
			fail("config enables the engines leg but the result has no engines section")
		}
		for _, eng := range []string{"tree", "bytecode", "regvm"} {
			cell := f.Engines[eng]
			if cell == nil {
				fail("engines leg missing the %q cell — every interpreter engine must be exercised", eng)
			}
			if cell.Requests <= 0 {
				fail("engines leg %q served no requests", eng)
			}
			if cell.Errors > 0 {
				fail("engines leg %q saw %d errors of %d requests — the engine failed behind the server",
					eng, cell.Errors, cell.Requests)
			}
			if cell.P50NS <= 0 || cell.MeanNS <= 0 {
				fail("engines leg %q has non-positive latency (p50 %d, mean %d)",
					eng, cell.P50NS, cell.MeanNS)
			}
		}
	}

	b, err := load(*baseline)
	if err != nil {
		// A missing baseline is fine on first introduction; structural checks
		// above still gate the run.
		fmt.Fprintf(os.Stderr, "servegate: no baseline (%v); structural checks only\n", err)
		fmt.Printf("servegate: OK — %d requests, %.1f rps, p50 %dns, p99 %dns\n",
			f.Requests, f.ThroughputRPS, f.LatencyNS.P50, f.LatencyNS.P99)
		return
	}
	if b.ThroughputRPS > 0 && f.ThroughputRPS < b.ThroughputRPS / *collapse {
		fail("throughput collapsed: fresh %.1f rps vs baseline %.1f rps (floor %.1f)",
			f.ThroughputRPS, b.ThroughputRPS, b.ThroughputRPS / *collapse)
	}
	fmt.Printf("servegate: OK — fresh %.1f rps vs baseline %.1f rps, p50 %dns, p99 %dns, hit %.2f, reject %.2f\n",
		f.ThroughputRPS, b.ThroughputRPS, f.LatencyNS.P50, f.LatencyNS.P99, f.HitRate, f.RejectRate)
}
