#!/bin/sh
# ci.sh — the repository's continuous-integration gate.
#
# Runs the same checks the tier-1 acceptance uses, plus formatting, vet and
# a race-detector pass over the concurrency-sensitive packages (the parallel
# schedulers, the telemetry observer — which takes events from tracer
# callbacks while debug endpoints snapshot it — the analysis farm, whose
# tests run all 19 app analyses concurrently, and the pardetectd service),
# plus a one-shot BenchmarkFarm smoke run so the batch driver keeps working
# as a benchmark harness, and a pardetectd end-to-end smoke
# (scripts/servesmoke.go: cached + uncached request, backpressure probe,
# /healthz, clean SIGTERM drain against the real binary, plus a 3-backend +
# pardetectrouter leg: routed affinity, batch fan-out, and failover after a
# backend SIGKILL).
#
# Before any of that, a repo-hygiene gate: the tree must not track built
# binaries (executable bits outside *.sh, or binary file content) or scratch
# benchmark artifacts (*.fresh.json) — those are build products, and a
# committed one silently staleness-poisons every later comparison.
#
# On top of that: a generated-code drift gate (go generate ./internal/interp
# must leave the tree clean — the regvm opcode table and dispatch switch are
# build products of gen_ops.go), a shuffled test pass (-shuffle=on) to catch
# test-order dependencies, the golden-table gate (scripts/goldens.sh,
# byte-diffs the rendered Tables III-V against testdata/goldens/ under ALL
# THREE interpreter engines), a bounded fuzzer campaign (internal/fuzzer,
# CAMPAIGN_N programs, default 500) whose differential — including the
# three-way engine-parity oracle — and metamorphic oracles must all agree,
# and an execution-engine benchmark smoke (BenchmarkExec plus
# BenchmarkExecAnalysis into a temp-dir
# BENCH_exec.fresh.json, gated by scripts/benchgate.go against the committed
# BENCH_exec.json: a >40% geomean regression of either compiled engine
# fails the build, as does regvm losing its untraced-execution lead over
# the bytecode engine or falling more than 30% behind it on full
# analysis — a collapse backstop; the profiler-bound analysis cells are
# too noisy per run for a tighter ordering), and a serving-layer
# benchmark smoke (cmd/servebench with
# -replicas 3 into a temp-dir BENCH_serve.fresh.json, gated by
# scripts/servegate.go: non-zero throughput, ordered latency quantiles,
# populated /metrics histograms, router affinity >= 0.95 with zero failover
# errors, no throughput collapse against the committed BENCH_serve.json).
#
# Corpus mode gets the same two-layer treatment: an end-to-end smoke
# (scripts/corpussmoke.go — generates a CORPUS_N-program corpus, proves the
# shipped parcorpus binary emits byte-identical cold reports across -jobs
# and -engine, a 100%-skipped warm rerun, and exactly-one re-analysis after
# touching one file) and a benchmark gate (parcorpus -bench into a temp-dir
# BENCH_corpus.fresh.json, validated structurally by scripts/corpusgate.go
# alongside the committed BENCH_corpus.json: cold analyses everything, warm
# re-analyses nothing, dirty re-analyses exactly the touched programs, and
# warm beats cold on wall time).
#
# Usage: scripts/ci.sh   (or: make ci)
set -eu

cd "$(dirname "$0")/.."

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

echo "==> repo hygiene (no tracked binaries or scratch artifacts)"
sh scripts/hygiene.sh

echo "==> generated code in sync (go generate ./internal/interp && git diff)"
go generate ./internal/interp
if ! git diff --exit-code -- internal/interp/op_codes.go internal/interp/op_exec.go; then
    echo "ci: generated opcode table drifted — commit the regenerated files" >&2
    exit 1
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -shuffle=on -count=1 ./...  (order-independence)"
go test -shuffle=on -count=1 ./...

echo "==> go test -race ./internal/parallel/... ./internal/obs/... ./internal/farm/... ./internal/fuzzer/... ./internal/server/... ./internal/router/... ./internal/corpus/..."
go test -race ./internal/parallel/... ./internal/obs/... ./internal/farm/... ./internal/fuzzer/... ./internal/server/... ./internal/router/... ./internal/corpus/...

echo "==> golden tables III-V under all three engines (scripts/goldens.sh)"
sh scripts/goldens.sh check

echo "==> pardetectd service smoke (scripts/servesmoke.go)"
go run scripts/servesmoke.go

echo "==> servebench smoke (cmd/servebench, 3-replica router leg, vs committed BENCH_serve.json)"
go run ./cmd/servebench -dur "${SERVEBENCH_DUR:-2s}" -c 4 -replicas 3 -out "$scratch/BENCH_serve.fresh.json"
go run scripts/servegate.go -baseline BENCH_serve.json -fresh "$scratch/BENCH_serve.fresh.json"

echo "==> corpus-mode smoke (scripts/corpussmoke.go, ${CORPUS_N:-1000} programs)"
go run scripts/corpussmoke.go

echo "==> corpus benchmark gate (parcorpus -bench vs committed BENCH_corpus.json)"
go run ./cmd/parcorpus -bench "${CORPUSBENCH_N:-200}" -bench-out "$scratch/BENCH_corpus.fresh.json"
go run scripts/corpusgate.go -baseline BENCH_corpus.json -fresh "$scratch/BENCH_corpus.fresh.json"

echo "==> fuzzer campaign (${CAMPAIGN_N:-500} programs)"
CAMPAIGN_N="${CAMPAIGN_N:-500}" go test -run '^TestCampaign$' -count=1 -v ./internal/fuzzer/

echo "==> BenchmarkFarm smoke (1 iteration per pool size)"
go test -run '^$' -bench '^BenchmarkFarm$' -benchtime 1x .

echo "==> execution-engine benchmark gate (BenchmarkExec + BenchmarkExecAnalysis vs committed BENCH_exec.json)"
EXEC_OUT="$scratch/BENCH_exec.fresh.json" go test -run '^$' -bench '^BenchmarkExec(Analysis)?$' -benchtime "${EXECBENCH_TIME:-20x}" .
go run scripts/benchgate.go -baseline BENCH_exec.json -fresh "$scratch/BENCH_exec.fresh.json"

echo "ci: all checks passed"
